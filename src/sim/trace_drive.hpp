/**
 * @file
 * Internal: windowed trace iteration shared by both simulators and the
 * precondition pass.
 *
 * TraceDrive walks a TraceSource's windows, and at every window boundary
 *
 *  1. pre-warms the page mapper from the planning pass (translating the
 *     pages first touched in the incoming window, in first-touch order —
 *     frame assignment is identical to lazy demand allocation, so
 *     results stay bit-identical; see trace_plan.hpp), and
 *  2. records the host time the advance blocked on trace I/O into the
 *     TraceIo latency histogram (spilled sources only — the in-RAM
 *     cursor has no I/O and registers nothing).
 *
 * The per-record inner loops stay in the simulators; all window
 * bookkeeping lives here so the three replay sites cannot drift apart.
 */
#ifndef RMCC_SIM_TRACE_DRIVE_HPP
#define RMCC_SIM_TRACE_DRIVE_HPP

#include <chrono>

#include "address/page_mapper.hpp"
#include "obs/registry.hpp"
#include "trace/trace_plan.hpp"
#include "trace/trace_source.hpp"

namespace rmcc::sim::detail
{

class TraceDrive
{
  public:
    /**
     * @param src trace to replay (borrowed).
     * @param mapper the rig's page mapper, pre-warmed per window when
     *        the source carries a plan.
     * @param obs run registry for the TraceIo histogram; may be null.
     */
    TraceDrive(const trace::TraceSource &src, addr::PageMapper &mapper,
               obs::Registry *obs)
        : mapper_(mapper), obs_(obs), plan_(src.plan()),
          cur_(src.cursor())
    {
    }

    /** Advance to the next window; false at end of trace. */
    bool advance()
    {
        using clock = std::chrono::steady_clock;
        const bool timed = obs_ != nullptr && cur_->ioStats() != nullptr;
        const auto t0 = timed ? clock::now() : clock::time_point{};
        w_ = cur_->next();
        if (w_.count == 0)
            return false;
        if (plan_ != nullptr) {
            const std::size_t wi = plan_->windowIndexOf(w_.first);
            const auto span = plan_->pageSpan(wi);
            // translate() allocates only on first touch, so re-listing
            // a page the lookahead already crossed into is a no-op.
            for (std::size_t k = 0; k < span.second; ++k)
                mapper_.translate(span.first[k]);
        }
        if (timed)
            obs_->recordLatency(
                obs::LatencyHist::TraceIo,
                static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clock::now() - t0)
                        .count()));
        return true;
    }

    /** The current window (valid after advance() returned true). */
    const trace::TraceWindow &window() const { return w_; }

    /** Cursor I/O counters; nullptr for in-RAM sources. */
    const trace::TraceIoStats *ioStats() const { return cur_->ioStats(); }

  private:
    addr::PageMapper &mapper_;
    obs::Registry *obs_;
    const trace::TracePlan *plan_;
    std::unique_ptr<trace::TraceCursor> cur_;
    trace::TraceWindow w_;
};

} // namespace rmcc::sim::detail

#endif // RMCC_SIM_TRACE_DRIVE_HPP
