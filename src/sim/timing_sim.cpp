#include "sim/timing_sim.hpp"

#include "sim/cpu_model.hpp"
#include "sim/obs_wiring.hpp"
#include "sim/rig.hpp"

namespace rmcc::sim
{

// rmcc-lint: hot-path
SimResult
runTiming(const std::string &workload_name,
          const trace::TraceSource &trace, const SystemConfig &cfg)
{
    detail::SimRig rig(cfg);
    detail::preconditionRmcc(rig, cfg, trace);
    CpuModel cpu(cfg.cpu);

    std::unique_ptr<obs::Registry> obs =
        obs::makeRunRegistry(detail::cellName(workload_name, cfg));

    // Windowed iteration + per-window mapper pre-warm (see TraceDrive);
    // invisible to the simulated state.
    detail::TraceDrive drive(trace, rig.mapper, obs.get());

    if (obs) {
        detail::registerRigProbes(*obs, rig, trace,
                                  [&cpu] { return cpu.now(); },
                                  drive.ioStats());
        rig.mc.attachObs(obs.get());
    }

    util::StatSet side;
    const util::StatHandle h_tlb_miss = side.handle("tlb.misses");
    const util::StatHandle h_llc_miss = side.handle("sim.llc_misses");
    const util::StatHandle h_llc_wb = side.handle("sim.llc_writebacks");
    util::StatSet mc_at_warm, side_at_warm;
    std::uint64_t insts_at_warm = 0;
    double time_at_warm = 0.0;

    const double llc_lookup_ns =
        cfg.l1.latency_ns + cfg.l2.latency_ns + cfg.llc.latency_ns;

    // One-record lookahead: each iteration translates the next record's
    // address and prefetches the cache sets / counter entries its access
    // will scan, hiding the counter store's memory stalls behind the
    // current record's work.  translate() is stat-free and the prefetch
    // hooks are pure, and translating v[i+1] at the end of iteration i
    // preserves the exact first-touch order v0, v1, v2, ... that the
    // plain loop produced — page-frame assignment, and therefore every
    // physical address and result, is unchanged.
    bool more = drive.advance();
    addr::Addr next_paddr =
        more ? rig.mapper.translate(drive.window().data[0].vaddr) : 0;
    std::size_t i = 0;
    while (more) {
        const trace::TraceWindow &w = drive.window();
        for (std::size_t k = 0; k < w.count; ++k, ++i) {
            // Cooperative cancellation: a cell past RMCC_CELL_TIMEOUT_MS
            // (or a SIGTERM'd suite) aborts here instead of running to
            // the end.
            if ((i & 0x1fff) == 0)
                util::pollCancel();
            const trace::Record &rec = w.data[k];
            if (i == cfg.warmup_records) {
                mc_at_warm = rig.mc.stats();
                side_at_warm = side;
                insts_at_warm = cpu.instructions();
                time_at_warm = cpu.now();
            }

            const double issue = cpu.advance(rec.inst_gap);
            if (!rig.tlb.access(rec.vaddr))
                side.inc(h_tlb_miss);
            const addr::Addr paddr = next_paddr;
            const trace::Record *nxt =
                k + 1 < w.count ? &w.data[k + 1] : w.ahead;
            if (nxt != nullptr) {
                next_paddr = rig.mapper.translate(nxt->vaddr);
                rig.hier.prefetch(next_paddr);
                rig.mc.prefetchRead(next_paddr);
            }
            const cache::HierarchyResult h =
                rig.hier.access(paddr, rec.is_write);

            if (h.llc_miss) {
                side.inc(h_llc_miss);
                const mc::McReadResult r =
                    rig.mc.read(paddr, issue + llc_lookup_ns);
                cpu.recordLongLatency(r.done_ns);
            } else if (h.hit_level == 3) {
                // LLC hits are long enough to occupy the window.
                cpu.recordLongLatency(issue + h.hit_latency_ns);
            }
            if (h.memory_writeback) {
                side.inc(h_llc_wb);
                const double stall =
                    rig.mc.write(*h.memory_writeback, cpu.now());
                cpu.stallUntil(stall);
            }
            if (obs)
                obs->tick();
        }
        more = drive.advance();
    }
    const double end = cpu.finish();
    if (obs) {
        rig.mc.attachObs(nullptr);
        obs->finish();
    }

    SimResult res;
    res.workload = workload_name;
    res.stats = rig.mc.stats().diff(mc_at_warm);
    res.stats.merge(side.diff(side_at_warm));
    res.instructions = cpu.instructions() - insts_at_warm;
    res.elapsed_ns = end - time_at_warm;
    res.stats.set("time.elapsed_ns", res.elapsed_ns);

    const dram::ChannelStats ds = rig.dram.aggregateStats();
    res.stats.set("dram.row_hits", static_cast<double>(ds.row_hits));
    res.stats.set("dram.row_conflicts",
                  static_cast<double>(ds.row_conflicts));

    if (cfg.rmcc && cfg.secure) {
        res.stats.set("rmcc.avg_coverage_l0",
                      rig.engine.averageCoverage(0));
    }
    if (cfg.secure) {
        res.stats.set("ctr.observed_max",
                      static_cast<double>(rig.tree.observedMax()));
        res.stats.set("ctr.init_max", static_cast<double>(rig.init_max));
        res.stats.set("ctr.overflows_total",
                      static_cast<double>(rig.tree.totalOverflows()));
        res.stats.set("ovf.stall_ns",
                      rig.mc.overflowEngine().totalStallNs());
    }
    return res;
}

} // namespace rmcc::sim
