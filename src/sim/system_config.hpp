/**
 * @file
 * Whole-system configuration (paper Table I) with the two preset shapes
 * the paper uses: the gem5-like timing configuration and the Pintool-like
 * lifetime-characterization configuration.
 */
#ifndef RMCC_SIM_SYSTEM_CONFIG_HPP
#define RMCC_SIM_SYSTEM_CONFIG_HPP

#include <cstdint>
#include <string>

#include "address/page_mapper.hpp"
#include "cache/hierarchy.hpp"
#include "core/rmcc_engine.hpp"
#include "counters/scheme.hpp"
#include "dram/config.hpp"
#include "mc/secure_mc.hpp"
#include "sim/cpu_model.hpp"

namespace rmcc::sim
{

/** Simulator flavour. */
enum class SimMode
{
    Timing,     //!< gem5-like: CPU + DRAM timing, performance numbers.
    Functional, //!< Pintool-like: hit rates/traffic across lifetimes.
};

/**
 * Multi-tenant shape of a run.  Inert at the default (tenants == 1):
 * nothing in the rig changes and every emitted number is bit-identical
 * to the single-tenant simulator.  With tenants > 1 the trace is expected
 * to carry tenant-tagged virtual addresses (tenant id at bit tag_shift,
 * see tenancy::TenantAddressMap), and under strict isolation the rig
 * partitions physical frames into per-tenant arenas, tags memo-table
 * groups with the owning tenant's domain, and (in the oracle) derives
 * per-tenant data-plane keys.
 */
struct TenancyShape
{
    std::uint64_t tenants = 1;  //!< 1 = single tenant (inert default).
    unsigned tag_shift = 0;     //!< Tenant-id bit position in vaddrs.
    bool strict = true;         //!< Strict isolation (arenas + domains).
    unsigned memo_quota = 0;    //!< Per-tenant memo-group cap (0 = off).
};

/** Everything needed to run one experiment on one workload. */
struct SystemConfig
{
    SimMode mode = SimMode::Timing;

    // --- security configuration ----------------------------------------
    bool secure = true;                      //!< false: non-secure system.
    ctr::SchemeKind scheme = ctr::SchemeKind::Morphable;
    bool rmcc = false;                       //!< RMCC on top of the scheme.
    core::RmccConfig rmcc_cfg;               //!< RMCC knobs.

    // --- memory-side configuration -------------------------------------
    std::uint64_t counter_cache_bytes = 128 * 1024;
    unsigned counter_cache_assoc = 32;
    mc::LatencyConfig lat;                   //!< AES/CLMUL/decode latencies.
    dram::DramConfig dram;

    // --- CPU-side configuration ----------------------------------------
    CpuConfig cpu;
    cache::LevelConfig l1{64 * 1024, 8, 2.0};
    cache::LevelConfig l2{1024 * 1024, 8, 4.0};
    cache::LevelConfig llc{8ULL * 1024 * 1024, 16, 17.0};
    unsigned tlb_entries = 1536;
    unsigned tlb_assoc = 8;
    addr::PageMode page_mode = addr::PageMode::Huge2M;

    // --- experiment shape ----------------------------------------------
    std::uint64_t phys_bytes = 384ULL * 1024 * 1024; //!< Backing frames.
    std::size_t trace_records = 800 * 1000;          //!< Memory ops.
    std::size_t warmup_records = 400 * 1000;         //!< Pre-measurement.
    /**
     * Replay the trace once through the counter tree + RMCC engine (no
     * caches/DRAM) before measuring — the analogue of the paper's
     * 25 B-instruction atomic-mode integrity-tree warm-up, which lets the
     * self-reinforcing update converge counter state as the unsimulated
     * earlier lifetime would have.
     */
    bool precondition = true;
    /**
     * Overhead-budget balance granted to the warm-up replay, as a
     * fraction of trace length.  Finite: workload regions the prior
     * lifetime could not afford to relevel stay unconverged, so memo hit
     * rates stay below the 100% ceiling as in the paper.
     */
    double precondition_budget_fraction = 3.0;
    addr::CounterValue counter_init_mean = 100000;   //!< Random-init mean.
    std::uint64_t seed = 42;

    // --- multi-tenant shape (inert at the default) ----------------------
    TenancyShape tenancy;

    /** gem5-like preset (Table I). */
    static SystemConfig timingDefault();

    /**
     * Pintool-like preset (Sec III/V): 1 MB L2, 2 MB LLC, 32 KB counter
     * cache per thread, functional mode, longer trace.
     */
    static SystemConfig functionalDefault();

    /** Render the Table I rows for bench_table1_config. */
    std::string describe() const;
};

} // namespace rmcc::sim

#endif // RMCC_SIM_SYSTEM_CONFIG_HPP
