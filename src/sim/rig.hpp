/**
 * @file
 * Internal: the assembled component stack ("rig") both simulators drive.
 */
#ifndef RMCC_SIM_RIG_HPP
#define RMCC_SIM_RIG_HPP

#include <algorithm>

#include "address/page_mapper.hpp"
#include "cache/hierarchy.hpp"
#include "cache/tlb.hpp"
#include "core/rmcc_engine.hpp"
#include "counters/tree.hpp"
#include "crypto/dispatch.hpp"
#include "dram/ddr4.hpp"
#include "mc/recovery.hpp"
#include "mc/secure_mc.hpp"
#include "sim/system_config.hpp"
#include "sim/trace_drive.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace rmcc::sim::detail
{

/** Derive the effective RMCC configuration for a run. */
inline core::RmccConfig
effectiveRmccConfig(const SystemConfig &cfg)
{
    core::RmccConfig rc = cfg.rmcc_cfg;
    rc.enabled = cfg.rmcc && cfg.secure;
    // Epochs scale with the simulated window (the paper's 1 M-access
    // epochs assume multi-billion-access lifetimes; see DESIGN.md).
    rc.budget.epoch_accesses = std::max<std::uint64_t>(
        50000, std::min<std::uint64_t>(rc.budget.epoch_accesses,
                                       cfg.trace_records / 8));
    // Strict multi-tenancy: memo-table groups carry the owning tenant's
    // domain tag, so one tenant's reads can never hit (or evict under a
    // quota) another tenant's memoized counter values.
    if (cfg.secure && cfg.tenancy.strict && cfg.tenancy.tenants > 1) {
        rc.memo.domains = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(cfg.tenancy.tenants, 0xffffffffULL));
        rc.memo.quota_groups = cfg.tenancy.memo_quota;
    }
    return rc;
}

/** All components of one simulated system. */
struct SimRig
{
    addr::PageMapper mapper;
    cache::Tlb tlb;
    cache::Hierarchy hier;
    ctr::IntegrityTree tree;
    core::RmccEngine engine;
    dram::Ddr4 dram;
    mc::SecureMc mc;
    addr::CounterValue init_max; //!< Observed max right after init.

    explicit SimRig(const SystemConfig &cfg)
        : mapper(cfg.page_mode, cfg.phys_bytes, cfg.seed ^ 0x9a9a),
          tlb(cfg.tlb_entries, cfg.tlb_assoc, mapper.pageSize()),
          hier(cfg.l1, cfg.l2, cfg.llc),
          tree(cfg.scheme, cfg.phys_bytes / addr::kBlockSize),
          engine(effectiveRmccConfig(cfg), tree),
          dram(cfg.dram),
          mc(mc::McConfig{cfg.secure, cfg.counter_cache_bytes,
                          cfg.counter_cache_assoc, cfg.lat,
                          mc::recoveryConfigFromEnv()},
             tree, engine, dram),
          init_max(0)
    {
        // The timing model charges latencies instead of running crypto,
        // so a garbage RMCC_CRYPTO_IMPL/BATCH would otherwise never be
        // parsed.  Resolve the dispatch up front: runner knobs are
        // caller contract and must abort loudly (same policy as the
        // other strict RMCC_* vars).
        crypto::hwAesActive();
        if (cfg.secure && cfg.tenancy.strict && cfg.tenancy.tenants > 1) {
            // Strict isolation: per-tenant physical arenas (before any
            // first touch), and a domain resolver translating a memo
            // consultation's (level, entity) into the owning tenant.
            // Arena sizes are powers of two and at least the widest
            // counter coverage, so entity -> tenant is a pure divide at
            // every tree level.
            mapper.partitionByTenant(cfg.tenancy.tag_shift,
                                     cfg.tenancy.tenants);
            const std::uint64_t arena_blocks =
                mapper.arenaBytes() / addr::kBlockSize;
            engine.setDomainResolver(
                [&t = tree, arena_blocks](unsigned level,
                                          std::uint64_t idx) {
                    std::uint64_t blk = idx;
                    for (unsigned k = 0; k < level; ++k)
                        blk *= t.level(k).coverage();
                    return static_cast<std::uint32_t>(blk / arena_blocks);
                });
        }
        util::Rng rng(cfg.seed ^ 0xc0c0);
        if (cfg.secure)
            tree.randomInit(rng, cfg.counter_init_mean);
        init_max = tree.observedMax();
    }
};

/**
 * Lifetime warm-up: replay the trace once through the counter tree and
 * RMCC engine alone (no caches/DRAM), with an unconstrained budget, so
 * the self-reinforcing update converges counter state the way the
 * unsimulated prior lifetime would have (the paper warms its integrity
 * tree for 25 B instructions in atomic mode before measuring).  Budgets
 * drain to zero afterwards: the measured window runs at steady accrual.
 */
inline void
preconditionRmcc(SimRig &rig, const SystemConfig &cfg,
                 const trace::TraceSource &trace)
{
    if (!(cfg.secure && cfg.rmcc && cfg.precondition))
        return;
    rig.engine.setBudgetPools(cfg.precondition_budget_fraction *
                              static_cast<double>(cfg.trace_records));
    const unsigned cov0 = rig.tree.level(0).coverage();
    std::uint64_t ops = 0;
    // Drive a throwaway copy of the cache hierarchy so counter reads
    // happen at LLC-miss granularity and counter writes at true
    // writeback addresses — the same streams the measured run will
    // produce — without pre-warming the measured caches.
    cache::Hierarchy scratch(cfg.l1, cfg.l2, cfg.llc);
    std::uint64_t polled = 0;
    // This pass runs first, so with a spilled source its window-boundary
    // pre-warm (TraceDrive) establishes the mapper's first-touch frame
    // order; the measured loop's pre-warms then all no-op.
    TraceDrive drive(trace, rig.mapper, nullptr);
    while (drive.advance()) {
        const trace::TraceWindow &w = drive.window();
        for (std::size_t k = 0; k < w.count; ++k) {
            if ((polled++ & 0x1fff) == 0)
                util::pollCancel();
            const trace::Record &rec = w.data[k];
            const addr::Addr paddr = rig.mapper.translate(rec.vaddr);
            const cache::HierarchyResult h =
                scratch.access(paddr, rec.is_write);
            if (h.llc_miss) {
                const addr::BlockId blk = addr::blockOf(paddr);
                rig.engine.onReadCounterUse(0, blk);
                if (ops % 8 == 0)
                    rig.engine.onReadCounterUse(1, blk / cov0);
                ++ops;
                rig.engine.onDramAccess();
            }
            if (h.memory_writeback) {
                const addr::BlockId blk =
                    addr::blockOf(*h.memory_writeback);
                rig.engine.onWriteCounter(0, blk);
                // L0 counter blocks reach memory roughly once per
                // several data writebacks; exercise the L1 table at
                // that rate.
                if (ops % 8 == 0)
                    rig.engine.onWriteCounter(1, blk / cov0);
                ++ops;
                rig.engine.onDramAccess();
            }
        }
    }
    rig.engine.setBudgetPools(0.0);
}

} // namespace rmcc::sim::detail

#endif // RMCC_SIM_RIG_HPP
