/**
 * @file
 * Virtual-to-physical page mapping.
 *
 * The paper's Pintool study runs everything under 2 MB huge pages, noting
 * that Morphable's 128-block counter coverage spans two adjacent 4 KB
 * physical pages and is therefore penalized when the OS scatters 4 KB pages.
 * This mapper implements both regimes: identity-contiguous huge pages and a
 * randomized (fragmented) 4 KB mapping, so the effect is reproducible.
 */
#ifndef RMCC_ADDRESS_PAGE_MAPPER_HPP
#define RMCC_ADDRESS_PAGE_MAPPER_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "address/types.hpp"
#include "util/rng.hpp"

namespace rmcc::addr
{

/** Page-size regime. */
enum class PageMode
{
    Small4K,  //!< 4 KB pages, randomized frame placement (fragmented).
    Huge2M,   //!< 2 MB pages, contiguous frame per page.
};

/**
 * Demand-allocation page table mapping virtual to physical addresses.
 */
class PageMapper
{
  public:
    /**
     * @param mode page-size regime.
     * @param phys_bytes physical region available for data frames.
     * @param seed randomization seed for 4 KB frame scattering.
     */
    PageMapper(PageMode mode, std::uint64_t phys_bytes,
               std::uint64_t seed = 1);

    /** Translate; allocates a frame on first touch of a page. */
    Addr translate(Addr vaddr);

    /**
     * Partition the physical frame pool into per-tenant arenas (strict
     * tenant isolation).  Tagged virtual addresses carry their tenant id
     * at bit `vaddr_tag_shift`; each tenant's pages then come from a
     * private, power-of-two-sized frame arena, so no counter block or
     * counter-tree entity at any level ever spans two tenants.  Must be
     * called before the first translate(); fatal when `tenants` arenas
     * do not fit in the physical region.
     */
    void partitionByTenant(unsigned vaddr_tag_shift, std::uint64_t tenants);

    /**
     * Frames per arena that partitionByTenant() would carve out of
     * `phys_bytes` under `mode` for this many tenants; 0 when the arenas
     * would not fit (fewer than two tenants, or below the 8 KB coverage
     * floor).  The one place arena geometry is computed — callers that
     * need the key-domain shift or occupancy ranges (tenancy layer)
     * derive them from this instead of re-implementing the sizing rule.
     */
    static std::uint64_t arenaFramesFor(PageMode mode,
                                        std::uint64_t phys_bytes,
                                        std::uint64_t tenants);

    /** Whether per-tenant arena partitioning is active. */
    bool partitioned() const { return arena_frames_ != 0; }

    /** Frames per tenant arena (0 when not partitioned). */
    std::uint64_t arenaFrames() const { return arena_frames_; }

    /** Bytes per tenant arena (0 when not partitioned). */
    std::uint64_t arenaBytes() const
    {
        return arena_frames_ * page_size_;
    }

    /** Page size in bytes for the current mode. */
    std::uint64_t pageSize() const { return page_size_; }

    /** Virtual page number of an address under the current mode. */
    std::uint64_t pageOf(Addr vaddr) const { return vaddr >> page_shift_; }

    /** Number of pages allocated so far. */
    std::size_t allocatedPages() const { return table_.size(); }

    /** Highest physical address handed out plus one. */
    Addr physFootprint() const
    {
        return (partitioned() ? peak_frame_end_ : next_frame_) *
               pageSize();
    }

  private:
    /** Per-tenant allocation state under partitioning. */
    struct Arena
    {
        std::uint64_t next = 0;
        std::vector<std::uint64_t> free; // shuffled, 4 KB mode only
    };

    std::uint64_t allocateFrame(std::uint64_t vpn);
    std::uint64_t allocateArenaFrame(std::uint64_t tenant);

    PageMode mode_;
    std::uint64_t page_size_;
    unsigned page_shift_;
    std::uint64_t phys_pages_;
    std::uint64_t seed_;
    std::uint64_t next_frame_ = 0;
    //! One-entry translation cache: consecutive records overwhelmingly hit
    //! the same page, and the mapping of an allocated page never changes.
    std::uint64_t last_vpn_ = ~0ULL;
    std::uint64_t last_frame_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> table_;
    std::vector<std::uint64_t> free_frames_; // shuffled, 4 KB mode only
    util::Rng rng_;

    // Tenant partitioning (inactive by default).
    std::uint64_t arena_frames_ = 0;
    std::uint64_t tenants_ = 0;
    unsigned tag_shift_ = 0;
    std::uint64_t peak_frame_end_ = 0;
    std::unordered_map<std::uint64_t, Arena> arenas_;
};

} // namespace rmcc::addr

#endif // RMCC_ADDRESS_PAGE_MAPPER_HPP
