/**
 * @file
 * Virtual-to-physical page mapping.
 *
 * The paper's Pintool study runs everything under 2 MB huge pages, noting
 * that Morphable's 128-block counter coverage spans two adjacent 4 KB
 * physical pages and is therefore penalized when the OS scatters 4 KB pages.
 * This mapper implements both regimes: identity-contiguous huge pages and a
 * randomized (fragmented) 4 KB mapping, so the effect is reproducible.
 */
#ifndef RMCC_ADDRESS_PAGE_MAPPER_HPP
#define RMCC_ADDRESS_PAGE_MAPPER_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "address/types.hpp"
#include "util/rng.hpp"

namespace rmcc::addr
{

/** Page-size regime. */
enum class PageMode
{
    Small4K,  //!< 4 KB pages, randomized frame placement (fragmented).
    Huge2M,   //!< 2 MB pages, contiguous frame per page.
};

/**
 * Demand-allocation page table mapping virtual to physical addresses.
 */
class PageMapper
{
  public:
    /**
     * @param mode page-size regime.
     * @param phys_bytes physical region available for data frames.
     * @param seed randomization seed for 4 KB frame scattering.
     */
    PageMapper(PageMode mode, std::uint64_t phys_bytes,
               std::uint64_t seed = 1);

    /** Translate; allocates a frame on first touch of a page. */
    Addr translate(Addr vaddr);

    /** Page size in bytes for the current mode. */
    std::uint64_t pageSize() const { return page_size_; }

    /** Virtual page number of an address under the current mode. */
    std::uint64_t pageOf(Addr vaddr) const { return vaddr >> page_shift_; }

    /** Number of pages allocated so far. */
    std::size_t allocatedPages() const { return table_.size(); }

    /** Highest physical address handed out plus one. */
    Addr physFootprint() const { return next_frame_ * pageSize(); }

  private:
    PageMode mode_;
    std::uint64_t page_size_;
    unsigned page_shift_;
    std::uint64_t phys_pages_;
    std::uint64_t next_frame_ = 0;
    //! One-entry translation cache: consecutive records overwhelmingly hit
    //! the same page, and the mapping of an allocated page never changes.
    std::uint64_t last_vpn_ = ~0ULL;
    std::uint64_t last_frame_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> table_;
    std::vector<std::uint64_t> free_frames_; // shuffled, 4 KB mode only
    util::Rng rng_;
};

} // namespace rmcc::addr

#endif // RMCC_ADDRESS_PAGE_MAPPER_HPP
