#include "address/layout.hpp"

#include <cassert>

namespace rmcc::addr
{

MemoryLayout::MemoryLayout(std::uint64_t data_bytes,
                           unsigned blocks_per_counter_block,
                           unsigned tree_arity)
    : data_blocks_((data_bytes + kBlockSize - 1) / kBlockSize),
      blocks_per_cb_(blocks_per_counter_block),
      tree_arity_(tree_arity)
{
    assert(blocks_per_cb_ > 0 && tree_arity_ > 1);
    // L0: one counter block per blocks_per_cb_ data blocks; higher levels
    // shrink by the tree arity until at most eight blocks remain, whose
    // own counters fit in on-chip root registers (SGX-style).  128 GB
    // under 128-ary coverage therefore gets the paper's four-level tree.
    std::uint64_t blocks =
        (data_blocks_ + blocks_per_cb_ - 1) / blocks_per_cb_;
    while (true) {
        level_blocks_.push_back(blocks);
        if (blocks <= 8)
            break;
        blocks = (blocks + tree_arity_ - 1) / tree_arity_;
    }
    counter_base_ = data_blocks_ * kBlockSize;
    Addr base = counter_base_;
    for (auto n : level_blocks_) {
        level_base_.push_back(base);
        base += n * kBlockSize;
    }
}

Addr
MemoryLayout::counterBlockAddr(unsigned level, CounterBlockId cb) const
{
    assert(level < level_blocks_.size() && cb < level_blocks_[level]);
    return level_base_[level] + cb * kBlockSize;
}

std::uint64_t
MemoryLayout::totalBytes() const
{
    std::uint64_t blocks = data_blocks_;
    for (auto n : level_blocks_)
        blocks += n;
    return blocks * kBlockSize;
}

} // namespace rmcc::addr
