/**
 * @file
 * Physical address-space layout for the secure-memory model: where data,
 * counter blocks, MACs, and integrity-tree levels live.
 *
 * Like Morphable Counters, data and its MAC (and ECC) are co-located in the
 * same DRAM access, so MACs need no separate address range.  Counter blocks
 * for level 0 (protecting data) and higher tree levels occupy dedicated
 * regions above the data region, as in SGX's metadata layout.
 */
#ifndef RMCC_ADDRESS_LAYOUT_HPP
#define RMCC_ADDRESS_LAYOUT_HPP

#include <cstdint>
#include <vector>

#include "address/types.hpp"

namespace rmcc::addr
{

/**
 * Address-space layout parameterized by protected-data size and tree arity.
 */
class MemoryLayout
{
  public:
    /**
     * @param data_bytes size of the protected data region (rounded up to a
     *        whole number of blocks).
     * @param blocks_per_counter_block coverage of one L0 counter block
     *        (128 for Morphable, 64 for SC-64, 8 for SGX monolithic).
     * @param tree_arity children per integrity-tree node above L0.
     */
    MemoryLayout(std::uint64_t data_bytes,
                 unsigned blocks_per_counter_block,
                 unsigned tree_arity);

    /** Number of protected data blocks. */
    std::uint64_t dataBlocks() const { return data_blocks_; }

    /** Number of integrity-tree levels that live in memory (L0..Ln-1). */
    unsigned levels() const
    {
        return static_cast<unsigned>(level_blocks_.size());
    }

    /** Number of counter blocks at a level (0 = data counters). */
    std::uint64_t levelBlocks(unsigned level) const
    {
        return level_blocks_[level];
    }

    /** L0 counter block protecting a data block. */
    CounterBlockId counterBlockOf(BlockId data_block) const
    {
        return data_block / blocks_per_cb_;
    }

    /** Parent counter block (at level+1) of a counter block at level. */
    CounterBlockId parentOf(CounterBlockId cb) const
    {
        return cb / tree_arity_;
    }

    /**
     * Physical byte address of a counter block, used to place counter
     * fetches in the DRAM model and to index the counter cache.  Counter
     * regions start right after the data region, one region per level.
     */
    Addr counterBlockAddr(unsigned level, CounterBlockId cb) const;

    /** Inverse of counterBlockAddr: true if addr is in a counter region. */
    bool isCounterAddr(Addr a) const { return a >= counter_base_; }

    /** Coverage of one L0 counter block, in data blocks. */
    unsigned blocksPerCounterBlock() const { return blocks_per_cb_; }

    /** Tree arity above L0. */
    unsigned treeArity() const { return tree_arity_; }

    /** Total physical footprint (data + all counter levels), bytes. */
    std::uint64_t totalBytes() const;

  private:
    std::uint64_t data_blocks_;
    unsigned blocks_per_cb_;
    unsigned tree_arity_;
    Addr counter_base_;
    std::vector<std::uint64_t> level_blocks_;
    std::vector<Addr> level_base_;
};

} // namespace rmcc::addr

#endif // RMCC_ADDRESS_LAYOUT_HPP
