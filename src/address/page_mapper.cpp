#include "address/page_mapper.hpp"

#include <bit>

#include "util/log.hpp"

namespace rmcc::addr
{

PageMapper::PageMapper(PageMode mode, std::uint64_t phys_bytes,
                       std::uint64_t seed)
    : mode_(mode),
      page_size_(mode == PageMode::Huge2M ? kHugePageSize : kSmallPageSize),
      page_shift_(static_cast<unsigned>(std::countr_zero(page_size_))),
      rng_(seed)
{
    phys_pages_ = phys_bytes / pageSize();
    if (phys_pages_ == 0)
        util::fatal("PageMapper: physical size smaller than one page");
}

Addr
PageMapper::translate(Addr vaddr)
{
    const std::uint64_t vpn = pageOf(vaddr);
    if (vpn == last_vpn_)
        return (last_frame_ << page_shift_) + (vaddr & (page_size_ - 1));
    auto it = table_.find(vpn);
    if (it == table_.end()) {
        std::uint64_t frame;
        if (mode_ == PageMode::Huge2M) {
            // Contiguous allocation: huge pages come from a bump pointer,
            // so adjacent virtual pages stay adjacent physically.
            frame = next_frame_++;
        } else {
            // Fragmented allocation: pick a random unused frame, emulating
            // a long-running system's scattered 4 KB frame pool.
            if (free_frames_.empty()) {
                free_frames_.reserve(phys_pages_);
                for (std::uint64_t f = 0; f < phys_pages_; ++f)
                    free_frames_.push_back(f);
                // Fisher-Yates shuffle.
                for (std::uint64_t i = phys_pages_ - 1; i > 0; --i) {
                    const auto j = rng_.nextBelow(i + 1);
                    std::swap(free_frames_[i], free_frames_[j]);
                }
            }
            if (next_frame_ >= free_frames_.size())
                util::fatal("PageMapper: out of physical frames");
            frame = free_frames_[next_frame_++];
        }
        if (next_frame_ > phys_pages_)
            util::fatal("PageMapper: out of physical frames");
        it = table_.emplace(vpn, frame).first;
    }
    last_vpn_ = vpn;
    last_frame_ = it->second;
    return (it->second << page_shift_) + (vaddr & (page_size_ - 1));
}

} // namespace rmcc::addr
