#include "address/page_mapper.hpp"

#include <bit>

#include "util/log.hpp"

namespace rmcc::addr
{

PageMapper::PageMapper(PageMode mode, std::uint64_t phys_bytes,
                       std::uint64_t seed)
    : mode_(mode),
      page_size_(mode == PageMode::Huge2M ? kHugePageSize : kSmallPageSize),
      page_shift_(static_cast<unsigned>(std::countr_zero(page_size_))),
      seed_(seed),
      rng_(seed)
{
    phys_pages_ = phys_bytes / pageSize();
    if (phys_pages_ == 0)
        util::fatal("PageMapper: physical size smaller than one page");
}

std::uint64_t
PageMapper::arenaFramesFor(PageMode mode, std::uint64_t phys_bytes,
                           std::uint64_t tenants)
{
    const std::uint64_t page =
        mode == PageMode::Huge2M ? kHugePageSize : kSmallPageSize;
    const std::uint64_t pages = phys_bytes / page;
    if (tenants < 2 || pages < tenants)
        return 0;
    // Power-of-two arenas: arena bytes are then a multiple of every
    // counter-scheme coverage span (8/64/128 blocks), so no counter
    // block or tree entity straddles an arena boundary.
    const std::uint64_t frames = std::bit_floor(pages / tenants);
    // 8 KB floor = the widest counter coverage (Morphable's 128 blocks);
    // only the 4 KB mode can go below it.
    return frames * page < 8192 ? 0 : frames;
}

void
PageMapper::partitionByTenant(unsigned vaddr_tag_shift,
                              std::uint64_t tenants)
{
    if (!table_.empty())
        util::fatal("PageMapper: partitionByTenant after first touch");
    if (tenants < 2)
        util::fatal("PageMapper: partitioning needs >= 2 tenants");
    if (vaddr_tag_shift < page_shift_)
        util::fatal("PageMapper: tenant tag shift %u below page shift %u "
                    "(tenants would share a page)",
                    vaddr_tag_shift, page_shift_);
    const std::uint64_t frames =
        arenaFramesFor(mode_, phys_pages_ * page_size_, tenants);
    if (frames == 0)
        util::fatal("PageMapper: %llu tenants do not fit %llu frames "
                    "(arena would shrink below the 8 KB coverage floor)",
                    static_cast<unsigned long long>(tenants),
                    static_cast<unsigned long long>(phys_pages_));
    arena_frames_ = frames;
    tenants_ = tenants;
    tag_shift_ = vaddr_tag_shift;
}

std::uint64_t
PageMapper::allocateArenaFrame(std::uint64_t tenant)
{
    if (tenant >= tenants_)
        util::fatal("PageMapper: vaddr tagged for tenant %llu of %llu",
                    static_cast<unsigned long long>(tenant),
                    static_cast<unsigned long long>(tenants_));
    Arena &a = arenas_[tenant];
    std::uint64_t local;
    if (mode_ == PageMode::Huge2M) {
        local = a.next++;
    } else {
        // Per-tenant shuffle from a per-tenant seed: a tenant's frame
        // placement depends only on its own first-touch order, not on
        // how the mix interleaved the other tenants.
        if (a.free.empty()) {
            a.free.reserve(arena_frames_);
            for (std::uint64_t f = 0; f < arena_frames_; ++f)
                a.free.push_back(f);
            util::Rng trng(seed_ + 0x9e3779b97f4a7c15ULL * (tenant + 1));
            for (std::uint64_t i = arena_frames_ - 1; i > 0; --i) {
                const auto j = trng.nextBelow(i + 1);
                std::swap(a.free[i], a.free[j]);
            }
        }
        if (a.next >= a.free.size())
            util::fatal("PageMapper: tenant %llu arena exhausted "
                        "(%llu frames)",
                        static_cast<unsigned long long>(tenant),
                        static_cast<unsigned long long>(arena_frames_));
        local = a.free[a.next++];
    }
    if (local >= arena_frames_)
        util::fatal("PageMapper: tenant %llu arena exhausted (%llu frames)",
                    static_cast<unsigned long long>(tenant),
                    static_cast<unsigned long long>(arena_frames_));
    const std::uint64_t frame = tenant * arena_frames_ + local;
    if (frame + 1 > peak_frame_end_)
        peak_frame_end_ = frame + 1;
    return frame;
}

std::uint64_t
PageMapper::allocateFrame(std::uint64_t vpn)
{
    if (partitioned())
        return allocateArenaFrame(vpn >> (tag_shift_ - page_shift_));

    std::uint64_t frame;
    if (mode_ == PageMode::Huge2M) {
        // Contiguous allocation: huge pages come from a bump pointer,
        // so adjacent virtual pages stay adjacent physically.
        frame = next_frame_++;
    } else {
        // Fragmented allocation: pick a random unused frame, emulating
        // a long-running system's scattered 4 KB frame pool.
        if (free_frames_.empty()) {
            free_frames_.reserve(phys_pages_);
            for (std::uint64_t f = 0; f < phys_pages_; ++f)
                free_frames_.push_back(f);
            // Fisher-Yates shuffle.
            for (std::uint64_t i = phys_pages_ - 1; i > 0; --i) {
                const auto j = rng_.nextBelow(i + 1);
                std::swap(free_frames_[i], free_frames_[j]);
            }
        }
        if (next_frame_ >= free_frames_.size())
            util::fatal("PageMapper: out of physical frames");
        frame = free_frames_[next_frame_++];
    }
    if (next_frame_ > phys_pages_)
        util::fatal("PageMapper: out of physical frames");
    return frame;
}

Addr
PageMapper::translate(Addr vaddr)
{
    const std::uint64_t vpn = pageOf(vaddr);
    if (vpn == last_vpn_)
        return (last_frame_ << page_shift_) + (vaddr & (page_size_ - 1));
    auto it = table_.find(vpn);
    if (it == table_.end())
        it = table_.emplace(vpn, allocateFrame(vpn)).first;
    last_vpn_ = vpn;
    last_frame_ = it->second;
    return (it->second << page_shift_) + (vaddr & (page_size_ - 1));
}

} // namespace rmcc::addr
