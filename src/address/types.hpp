/**
 * @file
 * Fundamental address-space types shared across the memory-system model.
 */
#ifndef RMCC_ADDRESS_TYPES_HPP
#define RMCC_ADDRESS_TYPES_HPP

#include <cstdint>

namespace rmcc::addr
{

/** A byte address (virtual or physical depending on context). */
using Addr = std::uint64_t;

/** Index of a 64 B memory block (physical address / 64). */
using BlockId = std::uint64_t;

/** Index of a counter block at some integrity-tree level. */
using CounterBlockId = std::uint64_t;

/** A 56-bit logical write-counter value (stored widened to 64 bits). */
using CounterValue = std::uint64_t;

/** Picoseconds; the base time unit of all timing models. */
using Tick = std::uint64_t;

/** Bytes per memory block / cache line. */
constexpr std::uint64_t kBlockSize = 64;

/** log2(kBlockSize). */
constexpr unsigned kBlockShift = 6;

/** Bytes per small (4 KB) page. */
constexpr std::uint64_t kSmallPageSize = 4096;

/** Bytes per huge (2 MB) page. */
constexpr std::uint64_t kHugePageSize = 2 * 1024 * 1024;

/** Block index containing a byte address. */
constexpr BlockId blockOf(Addr a) { return a >> kBlockShift; }

/** First byte address of a block. */
constexpr Addr blockBase(BlockId b) { return b << kBlockShift; }

/** Convert nanoseconds to ticks (1 tick = 1 ps). */
constexpr Tick fromNs(double ns)
{
    return static_cast<Tick>(ns * 1000.0);
}

/** Convert ticks to nanoseconds. */
constexpr double toNs(Tick t)
{
    return static_cast<double>(t) / 1000.0;
}

} // namespace rmcc::addr

#endif // RMCC_ADDRESS_TYPES_HPP
