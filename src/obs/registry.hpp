/**
 * @file
 * The observability facade: epoch time-series sampling, latency
 * histograms, and rare-event tracing for one simulation run, behind a
 * narrow interface whose disabled cost is one branch on a cached pointer.
 *
 * Modes (RMCC_OBS, strict-parsed):
 *   off    (default) nothing is created; makeRunRegistry() returns null
 *          and every instrumentation site costs `if (obs_)` on a pointer
 *          that is never set.
 *   epochs per-run probe snapshots every RMCC_OBS_EPOCH_RECORDS trace
 *          records into a columnar ring buffer, flushed as one CSV per
 *          experiment cell, plus latency-histogram CSVs.
 *   full   epochs plus Chrome trace-event JSON: one duration event per
 *          cell, capped instant events for rare occurrences (counter
 *          overflow, rebase, fault detection, cell retry), with
 *          thread-pool worker lanes.
 *
 * Output lands in RMCC_OBS_DIR (default "rmcc-obs", created on demand):
 *   epochs-<cell>.csv   record index + probe columns + rate columns
 *   hists-<cell>.csv    per-histogram summary + log2 bucket counts
 *   trace.json          Chrome trace (full mode, written at flush/exit)
 *
 * Threading: one Registry belongs to one simulation run on one thread.
 * The process-wide Session (trace writer, global instants) is
 * thread-safe.  Probes only *read* component state, so enabling obs
 * cannot perturb simulated results — the RMCC_OBS=off bit-identity
 * guarantee extends to the sampled values themselves.
 */
#ifndef RMCC_OBS_REGISTRY_HPP
#define RMCC_OBS_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/trace_writer.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace rmcc::obs
{

/** RMCC_OBS policy. */
enum class ObsMode
{
    Off,    //!< No observability (default).
    Epochs, //!< Epoch CSV + histograms per cell.
    Full,   //!< Epochs plus Chrome trace events.
};

/** Parsed observability configuration. */
struct ObsConfig
{
    ObsMode mode = ObsMode::Off;
    std::string dir = "rmcc-obs";       //!< RMCC_OBS_DIR.
    std::uint64_t epoch_records = 10000; //!< RMCC_OBS_EPOCH_RECORDS.
    std::uint64_t max_epochs = 4096;     //!< RMCC_OBS_MAX_EPOCHS (ring cap).
};

/**
 * Read RMCC_OBS / RMCC_OBS_DIR / RMCC_OBS_EPOCH_RECORDS /
 * RMCC_OBS_MAX_EPOCHS with strict parsing.
 * @throws std::runtime_error on malformed values (util::env semantics).
 */
ObsConfig obsConfigFromEnv();

/** Latency histograms every run carries. */
enum class LatencyHist
{
    McRead,    //!< Secure-MC read: request to data usable, ns.
    Dram,      //!< Single DRAM transfer: issue to burst end, ns.
    MacVerify, //!< MAC verification chain: request to verified, ns.
    Recovery,  //!< Fault recovery: detection to re-served (or given up), ns.
    TraceIo,   //!< Spilled-trace window advance: host ns blocked in I/O.
    kCount,
};

/** Human-readable histogram name (CSV row label). */
const char *latencyHistName(LatencyHist h);

/** Rare occurrences reported as instant trace events and counters. */
enum class InstantKind
{
    CounterOverflowL0, //!< L0 counter overflow (block re-encryption).
    CounterOverflowHi, //!< Higher-level counter overflow.
    Rebase,            //!< Deliberate RMCC relevel/rebase of a block.
    FaultDetected,     //!< Detection oracle flagged a perturbed read.
    CellRetry,         //!< Suite runner retried a failed cell.
    FaultRecovered,    //!< Recovery re-served a read after a detection.
    MemoQuarantine,    //!< A poisoned memo-table value was quarantined.
    DegradedEnter,     //!< RecoveryPolicy entered degraded mode.
    DegradedExit,      //!< Degraded-mode residency expired.
    kCount,
};

/** Instant-kind display name. */
const char *instantKindName(InstantKind k);

class Session;

/**
 * Per-run observability context: probes, epoch ring buffer, histograms,
 * instant-event counters, and the run's duration trace event.
 */
class Registry
{
  public:
    /** Created via makeRunRegistry(); cfg.mode must not be Off. */
    Registry(std::string cell, const ObsConfig &cfg, Session *session);

    /** Flushes if finish() was not called explicitly. */
    ~Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Cell label this run reports under. */
    const std::string &cell() const { return cell_; }

    /**
     * Register a probe sampled at every epoch boundary.  Probes must be
     * pure reads of state outliving the registry.  Registration order is
     * CSV column order.
     */
    void addProbe(std::string name, std::function<double()> fn);

    /**
     * Register a derived per-epoch rate column: delta(num)/delta(den)
     * between consecutive snapshots (0 when den does not advance).  num
     * and den name previously added probes.
     */
    void addRate(std::string name, const std::string &num,
                 const std::string &den);

    /**
     * Advance by one trace record; snapshots all probes every
     * epoch_records ticks.  The per-record cost between boundaries is one
     * increment and one compare.
     */
    void tick()
    {
        if (++records_ - last_snapshot_records_ >= epoch_records_)
            snapshot();
    }

    /** Record a latency sample (ns). */
    void recordLatency(LatencyHist h, double ns)
    {
        hists_[static_cast<std::size_t>(h)].add(ns);
    }

    /** Direct histogram access (tests, summaries). */
    const Log2Histogram &hist(LatencyHist h) const
    {
        return hists_[static_cast<std::size_t>(h)];
    }

    /**
     * Report one rare occurrence: counts always; forwards to the trace
     * writer (full mode) up to a per-kind cap so bursts cannot bloat the
     * trace.
     */
    void instant(InstantKind k);

    /** Occurrences of a kind reported through this registry. */
    std::uint64_t instantCount(InstantKind k) const
    {
        return instant_counts_[static_cast<std::size_t>(k)];
    }

    /** Epoch rows evicted from the ring buffer (oldest-first). */
    std::uint64_t epochsDropped() const { return ring_dropped_; }

    /**
     * Take a final (possibly partial-epoch) snapshot, write the epoch and
     * histogram CSVs, and emit the run's duration trace event.
     * Idempotent; also invoked by the destructor.
     */
    void finish();

  private:
    void snapshot();
    void writeCsvs();

    std::string cell_;
    ObsMode mode_;
    std::string dir_;
    std::uint64_t epoch_records_;
    std::uint64_t max_epochs_;
    Session *session_;

    struct Probe
    {
        std::string name;
        std::function<double()> fn;
    };
    struct Rate
    {
        std::string name;
        std::size_t num_idx;
        std::size_t den_idx;
    };
    std::vector<Probe> probes_;
    std::vector<Rate> rates_;

    //! Columnar ring buffer: one column per probe, then one per rate;
    //! row r of the ring is snapshot (head_ + r) % rows_ in time order.
    std::vector<std::vector<double>> cols_;
    std::vector<double> row_records_; //!< Record index column (ring too).
    std::uint64_t rows_ = 0;          //!< Valid rows in the ring.
    std::uint64_t head_ = 0;          //!< Oldest row when ring is full.
    std::uint64_t ring_dropped_ = 0;

    std::vector<double> prev_values_; //!< Probe values at last snapshot.
    bool have_prev_ = false;

    std::uint64_t records_ = 0;
    std::uint64_t last_snapshot_records_ = 0;

    Log2Histogram hists_[static_cast<std::size_t>(LatencyHist::kCount)];
    std::uint64_t
        instant_counts_[static_cast<std::size_t>(InstantKind::kCount)] = {};

    double start_us_ = 0.0; //!< Trace timebase at construction (full mode).
    bool finished_ = false;
};

/**
 * Process-wide observability session: the parsed configuration, the
 * shared trace writer (full mode), and rare-event instants raised outside
 * any single run (fault detection, cell retries).  Thread-safe.
 */
class Session
{
  public:
    explicit Session(ObsConfig cfg);

    /** Flushes the trace on destruction. */
    ~Session();

    const ObsConfig &config() const { return cfg_; }

    /** The shared trace writer; null unless mode is Full. */
    TraceWriter *trace() { return trace_.get(); }

    /**
     * Global instant event (per-kind capped); no-op unless mode is Full.
     * @param detail appended to the event name for context.
     */
    void instant(InstantKind k, const std::string &detail);

    /** Write trace.json into the obs dir if any events were recorded. */
    void flushTrace();

  private:
    ObsConfig cfg_;                      //!< Const after construction.
    std::unique_ptr<TraceWriter> trace_; //!< Const after construction;
                                         //!< TraceWriter locks internally.
    util::Mutex mutex_;
    std::uint64_t instant_counts_[static_cast<std::size_t>(
        InstantKind::kCount)] RMCC_GUARDED_BY(mutex_) = {};
    bool trace_flushed_ RMCC_GUARDED_BY(mutex_) = false;
};

/**
 * The process-wide session, lazily resolved from the environment on first
 * use (thread-safe).
 * @throws std::runtime_error on malformed RMCC_OBS* variables.
 */
Session &session();

/**
 * Flush the current session's trace and re-read the environment on next
 * use.  Test/bench hook, mirroring crypto::reresolveCryptoDispatch();
 * callers must not hold live Registry instances across it.
 */
void reresolveObs();

/**
 * Create the observability context for one simulation run, or null when
 * RMCC_OBS=off — the caller caches the pointer and pays one branch per
 * instrumentation site.
 * @param cell stable label for the (workload, configuration) cell.
 */
std::unique_ptr<Registry> makeRunRegistry(const std::string &cell);

/**
 * Raise a global instant event if a session exists in full mode.  Safe on
 * any thread; resolves the session lazily (strict env parsing applies).
 */
void instantGlobal(InstantKind k, const std::string &detail);

/**
 * Replace characters outside [A-Za-z0-9._+-] with '-' so cell labels are
 * safe file-name components.
 */
std::string sanitizeCellName(const std::string &s);

} // namespace rmcc::obs

#endif // RMCC_OBS_REGISTRY_HPP
