#include "obs/registry.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "util/env.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace rmcc::obs
{

namespace
{

//! Per-kind cap on instant events forwarded to the trace writer.  A
//! pathological run can overflow counters millions of times; the first
//! few hundred instants tell the story, the counter tells the total.
constexpr std::uint64_t kInstantTraceCap = 256;

//! Chrome-trace lane for the calling thread (see TraceWriter docs).
int
laneTid()
{
    return util::currentWorkerId() + 1;
}

void
csvNumber(std::ofstream &f, double v)
{
    // Integral probe values (the common case: counters) print exactly;
    // everything else gets enough digits to round-trip visually.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        f << buf;
    } else {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.9g", v);
        f << buf;
    }
}

} // namespace

ObsConfig
obsConfigFromEnv()
{
    ObsConfig cfg;
    const std::string mode =
        util::envChoice("RMCC_OBS", {"off", "epochs", "full"}, "off");
    cfg.mode = mode == "full"     ? ObsMode::Full
               : mode == "epochs" ? ObsMode::Epochs
                                  : ObsMode::Off;
    if (const auto dir = util::envString("RMCC_OBS_DIR"))
        cfg.dir = *dir;
    if (const auto v = util::envPositive("RMCC_OBS_EPOCH_RECORDS"))
        cfg.epoch_records = *v;
    if (const auto v = util::envPositive("RMCC_OBS_MAX_EPOCHS"))
        cfg.max_epochs = *v;
    return cfg;
}

const char *
latencyHistName(LatencyHist h)
{
    switch (h) {
    case LatencyHist::McRead: return "mc_read_ns";
    case LatencyHist::Dram: return "dram_access_ns";
    case LatencyHist::MacVerify: return "mac_verify_ns";
    case LatencyHist::Recovery: return "recovery_ns";
    case LatencyHist::TraceIo: return "trace_io_ns";
    case LatencyHist::kCount: break;
    }
    return "?";
}

const char *
instantKindName(InstantKind k)
{
    switch (k) {
    case InstantKind::CounterOverflowL0: return "counter_overflow_l0";
    case InstantKind::CounterOverflowHi: return "counter_overflow_hi";
    case InstantKind::Rebase: return "rebase";
    case InstantKind::FaultDetected: return "fault_detected";
    case InstantKind::CellRetry: return "cell_retry";
    case InstantKind::FaultRecovered: return "fault_recovered";
    case InstantKind::MemoQuarantine: return "memo_quarantine";
    case InstantKind::DegradedEnter: return "degraded_enter";
    case InstantKind::DegradedExit: return "degraded_exit";
    case InstantKind::kCount: break;
    }
    return "?";
}

std::string
sanitizeCellName(const std::string &s)
{
    std::string out = s;
    for (char &c : out) {
        const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '+' || c == '-';
        if (!ok)
            c = '-';
    }
    return out;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Registry(std::string cell, const ObsConfig &cfg, Session *session)
    : cell_(sanitizeCellName(cell)),
      mode_(cfg.mode),
      dir_(cfg.dir),
      epoch_records_(cfg.epoch_records),
      max_epochs_(cfg.max_epochs),
      session_(session)
{
    if (mode_ == ObsMode::Full && session_ && session_->trace())
        start_us_ = session_->trace()->nowUs();
}

Registry::~Registry()
{
    finish();
}

void
Registry::addProbe(std::string name, std::function<double()> fn)
{
    probes_.push_back({std::move(name), std::move(fn)});
}

void
Registry::addRate(std::string name, const std::string &num,
                  const std::string &den)
{
    std::size_t num_idx = probes_.size();
    std::size_t den_idx = probes_.size();
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        if (probes_[i].name == num)
            num_idx = i;
        if (probes_[i].name == den)
            den_idx = i;
    }
    if (num_idx == probes_.size() || den_idx == probes_.size())
        util::panic("obs: rate '%s' references unknown probe ('%s'/'%s')",
                    name.c_str(), num.c_str(), den.c_str());
    rates_.push_back({std::move(name), num_idx, den_idx});
}

void
Registry::snapshot()
{
    last_snapshot_records_ = records_;
    if (cols_.empty()) {
        cols_.resize(probes_.size() + rates_.size());
        for (auto &c : cols_)
            c.reserve(std::min<std::uint64_t>(max_epochs_, 1024));
        row_records_.reserve(std::min<std::uint64_t>(max_epochs_, 1024));
        prev_values_.assign(probes_.size(), 0.0);
    }

    std::vector<double> vals(probes_.size());
    for (std::size_t i = 0; i < probes_.size(); ++i)
        vals[i] = probes_[i].fn();

    const std::uint64_t slot = rows_ < max_epochs_
                                   ? rows_
                                   : head_; // overwrite the oldest row
    auto store = [&](std::vector<double> &col, double v) {
        if (slot < col.size())
            col[slot] = v;
        else
            col.push_back(v);
    };

    store(row_records_, static_cast<double>(records_));
    for (std::size_t i = 0; i < probes_.size(); ++i)
        store(cols_[i], vals[i]);
    for (std::size_t r = 0; r < rates_.size(); ++r) {
        double rate = 0.0;
        if (have_prev_) {
            const double dn = vals[rates_[r].num_idx] -
                              prev_values_[rates_[r].num_idx];
            const double dd = vals[rates_[r].den_idx] -
                              prev_values_[rates_[r].den_idx];
            if (dd > 0.0)
                rate = dn / dd;
        } else if (vals[rates_[r].den_idx] > 0.0) {
            // First epoch: rate over everything seen so far.
            rate = vals[rates_[r].num_idx] / vals[rates_[r].den_idx];
        }
        store(cols_[probes_.size() + r], rate);
    }

    if (rows_ < max_epochs_) {
        ++rows_;
    } else {
        head_ = (head_ + 1) % max_epochs_;
        ++ring_dropped_;
    }
    prev_values_ = std::move(vals);
    have_prev_ = true;
}

void
Registry::instant(InstantKind k)
{
    const auto idx = static_cast<std::size_t>(k);
    ++instant_counts_[idx];
    if (mode_ == ObsMode::Full && session_ && session_->trace() &&
        instant_counts_[idx] <= kInstantTraceCap) {
        session_->trace()->instant(
            std::string(instantKindName(k)) + ":" + cell_, laneTid());
    }
}

void
Registry::writeCsvs()
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        util::warn("obs: cannot create dir %s: %s", dir_.c_str(),
                   ec.message().c_str());
        return;
    }

    const std::string epochs_path = dir_ + "/epochs-" + cell_ + ".csv";
    std::ofstream ef(epochs_path);
    if (!ef) {
        util::warn("obs: cannot write %s", epochs_path.c_str());
        return;
    }
    ef << "records";
    for (const Probe &p : probes_)
        ef << "," << p.name;
    for (const Rate &r : rates_)
        ef << "," << r.name;
    ef << "\n";
    for (std::uint64_t row = 0; row < rows_; ++row) {
        const std::uint64_t slot =
            rows_ < max_epochs_ ? row : (head_ + row) % max_epochs_;
        csvNumber(ef, row_records_[slot]);
        for (const auto &col : cols_) {
            ef << ",";
            csvNumber(ef, col[slot]);
        }
        ef << "\n";
    }

    const std::string hists_path = dir_ + "/hists-" + cell_ + ".csv";
    std::ofstream hf(hists_path);
    if (!hf) {
        util::warn("obs: cannot write %s", hists_path.c_str());
        return;
    }
    hf << "hist,count,mean,p50,p95,p99,max";
    for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b)
        hf << ",b" << b;
    hf << "\n";
    for (std::size_t h = 0; h < static_cast<std::size_t>(LatencyHist::kCount);
         ++h) {
        const Log2Histogram &hist = hists_[h];
        const HistSummary s = hist.summary();
        hf << latencyHistName(static_cast<LatencyHist>(h));
        hf << ",";
        csvNumber(hf, static_cast<double>(s.count));
        for (const double v : {s.mean, s.p50, s.p95, s.p99, s.max}) {
            hf << ",";
            csvNumber(hf, v);
        }
        for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
            hf << ",";
            csvNumber(hf, static_cast<double>(hist.bucketCount(b)));
        }
        hf << "\n";
    }
}

void
Registry::finish()
{
    if (finished_)
        return;
    finished_ = true;

    // Final partial epoch so short runs still produce rows.
    if (records_ > last_snapshot_records_ || rows_ == 0)
        snapshot();

    // Internal bookkeeping lands in the histogram CSV's sibling columns
    // via the trace args; the ring-drop count at least gets a warning.
    if (ring_dropped_ > 0)
        util::warn("obs: cell %s dropped %llu oldest epoch row(s) "
                   "(raise RMCC_OBS_MAX_EPOCHS or RMCC_OBS_EPOCH_RECORDS)",
                   cell_.c_str(),
                   static_cast<unsigned long long>(ring_dropped_));

    writeCsvs();

    if (mode_ == ObsMode::Full && session_ && session_->trace()) {
        TraceWriter *tw = session_->trace();
        const double end_us = tw->nowUs();
        std::string args = "{\"records\":" + std::to_string(records_);
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(InstantKind::kCount); ++k) {
            if (instant_counts_[k] > 0)
                args += std::string(",\"") +
                        instantKindName(static_cast<InstantKind>(k)) +
                        "\":" + std::to_string(instant_counts_[k]);
        }
        args += "}";
        tw->complete("cell:" + cell_, start_us_,
                     std::max(0.0, end_us - start_us_), laneTid(), args);
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(ObsConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.mode == ObsMode::Off)
        return;
    std::error_code ec;
    std::filesystem::create_directories(cfg_.dir, ec);
    if (ec)
        util::warn("obs: cannot create dir %s: %s", cfg_.dir.c_str(),
                   ec.message().c_str());
    if (cfg_.mode == ObsMode::Full)
        trace_ = std::make_unique<TraceWriter>();
}

Session::~Session()
{
    flushTrace();
}

void
Session::instant(InstantKind k, const std::string &detail)
{
    if (!trace_)
        return;
    const auto idx = static_cast<std::size_t>(k);
    {
        util::MutexLock lock(mutex_);
        if (++instant_counts_[idx] > kInstantTraceCap)
            return;
    }
    std::string name = instantKindName(k);
    if (!detail.empty())
        name += ":" + detail;
    trace_->instant(name, laneTid());
}

void
Session::flushTrace()
{
    util::MutexLock lock(mutex_);
    if (!trace_ || trace_flushed_ || trace_->size() == 0)
        return;
    trace_flushed_ = true;
    trace_->writeJson(cfg_.dir + "/trace.json");
}

// ---------------------------------------------------------------------------
// Global session management
// ---------------------------------------------------------------------------

namespace
{

util::Mutex g_session_mutex;
std::unique_ptr<Session> g_session RMCC_GUARDED_BY(g_session_mutex);

Session &
sessionLocked() RMCC_REQUIRES(g_session_mutex)
{
    if (!g_session)
        g_session = std::make_unique<Session>(obsConfigFromEnv());
    return *g_session;
}

//! Flushes the trace at process exit even if no one calls flushTrace().
struct SessionFlusher
{
    ~SessionFlusher()
    {
        util::MutexLock lock(g_session_mutex);
        g_session.reset();
    }
} g_session_flusher;

} // namespace

Session &
session()
{
    util::MutexLock lock(g_session_mutex);
    return sessionLocked();
}

void
reresolveObs()
{
    util::MutexLock lock(g_session_mutex);
    g_session.reset(); // dtor flushes any pending trace
}

std::unique_ptr<Registry>
makeRunRegistry(const std::string &cell)
{
    util::MutexLock lock(g_session_mutex);
    Session &s = sessionLocked();
    if (s.config().mode == ObsMode::Off)
        return nullptr;
    return std::make_unique<Registry>(cell, s.config(), &s);
}

void
instantGlobal(InstantKind k, const std::string &detail)
{
    util::MutexLock lock(g_session_mutex);
    Session &s = sessionLocked();
    if (s.config().mode != ObsMode::Full)
        return;
    s.instant(k, detail);
}

} // namespace rmcc::obs
