#include "obs/trace_writer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/log.hpp"

namespace rmcc::obs
{

TraceWriter::TraceWriter(std::size_t max_events)
    : max_events_(max_events), t0_(std::chrono::steady_clock::now())
{
    events_.reserve(std::min<std::size_t>(max_events, 4096));
}

double
TraceWriter::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
}

void
TraceWriter::push(Event e)
{
    util::MutexLock lock(mutex_);
    if (events_.size() >= max_events_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(e));
}

void
TraceWriter::complete(const std::string &name, double ts_us, double dur_us,
                      int tid, const std::string &args_json)
{
    push({name, 'X', ts_us, dur_us, tid, args_json});
}

void
TraceWriter::instant(const std::string &name, int tid,
                     const std::string &args_json)
{
    push({name, 'i', nowUs(), 0.0, tid, args_json});
}

std::size_t
TraceWriter::size() const
{
    util::MutexLock lock(mutex_);
    return events_.size();
}

std::uint64_t
TraceWriter::dropped() const
{
    util::MutexLock lock(mutex_);
    return dropped_;
}

std::string
TraceWriter::jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
TraceWriter::writeJson(const std::string &path) const
{
    util::MutexLock lock(mutex_);
    std::ofstream f(path);
    if (!f) {
        util::warn("obs: cannot write trace file %s", path.c_str());
        return false;
    }
    f << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            f << ",";
        first = false;
        f << "\n";
    };
    // Lane labels: one thread_name metadata event per tid seen.
    std::set<int> tids;
    for (const Event &e : events_)
        tids.insert(e.tid);
    for (const int tid : tids) {
        sep();
        const std::string lane =
            tid == 0 ? "main" : "worker-" + std::to_string(tid - 1);
        f << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
          << tid << ",\"args\":{\"name\":\"" << lane << "\"}}";
    }
    char num[64];
    for (const Event &e : events_) {
        sep();
        f << "{\"name\":\"" << jsonEscape(e.name) << "\",\"ph\":\"" << e.ph
          << "\",\"pid\":1,\"tid\":" << e.tid;
        std::snprintf(num, sizeof num, "%.3f", e.ts_us);
        f << ",\"ts\":" << num;
        if (e.ph == 'X') {
            std::snprintf(num, sizeof num, "%.3f", e.dur_us);
            f << ",\"dur\":" << num;
        }
        if (e.ph == 'i')
            f << ",\"s\":\"t\"";
        if (!e.args.empty())
            f << ",\"args\":" << e.args;
        f << "}";
    }
    f << "\n],\"displayTimeUnit\":\"ms\"}\n";
    if (dropped_ > 0)
        util::warn("obs: trace event cap reached; %llu event(s) dropped",
                   static_cast<unsigned long long>(dropped_));
    return static_cast<bool>(f);
}

} // namespace rmcc::obs
