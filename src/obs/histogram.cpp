#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace rmcc::obs
{

void
Log2Histogram::add(double v)
{
    if (!(v > 0.0)) // negatives and NaN clamp into bucket 0
        v = 0.0;
    ++counts_[bucketOf(v)];
    ++total_;
    sum_ += v;
    max_ = std::max(max_, v);
}

std::size_t
Log2Histogram::bucketOf(double v)
{
    if (!(v >= 1.0))
        return 0;
    // ilogb(v) = floor(log2(v)) >= 0 here; bucket i covers [2^(i-1), 2^i).
    const int e = std::ilogb(v);
    return std::min<std::size_t>(kBuckets - 1,
                                 static_cast<std::size_t>(e) + 1);
}

double
Log2Histogram::bucketLow(std::size_t i)
{
    return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

double
Log2Histogram::bucketHigh(std::size_t i)
{
    return std::ldexp(1.0, static_cast<int>(i));
}

double
Log2Histogram::quantile(double p) const
{
    if (total_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(total_))));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cum += counts_[i];
        if (cum >= rank)
            return std::min(bucketHigh(i), max_);
    }
    return max_;
}

HistSummary
Log2Histogram::summary() const
{
    HistSummary s;
    s.count = total_;
    s.mean = mean();
    s.p50 = quantile(0.50);
    s.p95 = quantile(0.95);
    s.p99 = quantile(0.99);
    s.max = max();
    return s;
}

void
Log2Histogram::reset()
{
    *this = Log2Histogram();
}

} // namespace rmcc::obs
