/**
 * @file
 * Log2-bucketed histogram for latency/value distributions.
 *
 * The observability layer records per-request latencies on hot paths, so
 * the histogram must be O(1) per sample with no allocation: 64 fixed
 * power-of-two buckets cover the full double range that latencies (in ns)
 * occupy.  Bucket 0 holds samples below 1; bucket i >= 1 holds
 * [2^(i-1), 2^i).  Quantiles are conservative upper bounds: the reported
 * p-quantile is the upper edge of the bucket containing the rank-p sample,
 * clamped to the exact observed maximum — "p99 <= X" is the statement a
 * latency budget needs, and it is exact whenever the true quantile sits on
 * a bucket edge.
 */
#ifndef RMCC_OBS_HISTOGRAM_HPP
#define RMCC_OBS_HISTOGRAM_HPP

#include <cstddef>
#include <cstdint>

namespace rmcc::obs
{

/** Fixed summary emitted per histogram in the obs CSV. */
struct HistSummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/**
 * 64-bucket log2 histogram over non-negative doubles.
 */
class Log2Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    /** Record one sample; negatives clamp to 0 (bucket 0). */
    void add(double v);

    /** Total samples recorded. */
    std::uint64_t count() const { return total_; }

    /** Exact largest sample (0 when empty). */
    double max() const { return total_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const
    {
        return total_ ? sum_ / static_cast<double>(total_) : 0.0;
    }

    /** Count in bucket i (0 <= i < kBuckets). */
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }

    /** Bucket index a sample lands in. */
    static std::size_t bucketOf(double v);

    /** Inclusive lower edge of bucket i (0 for bucket 0). */
    static double bucketLow(std::size_t i);

    /** Exclusive upper edge of bucket i. */
    static double bucketHigh(std::size_t i);

    /**
     * Conservative p-quantile (0 <= p <= 1): upper edge of the bucket
     * holding the ceil(p * count)-th smallest sample, clamped to max().
     * Returns 0 when empty.
     */
    double quantile(double p) const;

    /** count/mean/p50/p95/p99/max in one call. */
    HistSummary summary() const;

    /** Reset to the empty state. */
    void reset();

  private:
    std::uint64_t counts_[kBuckets] = {};
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
};

} // namespace rmcc::obs

#endif // RMCC_OBS_HISTOGRAM_HPP
