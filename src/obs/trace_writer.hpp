/**
 * @file
 * Chrome trace-event JSON writer (chrome://tracing / Perfetto loadable).
 *
 * Collects complete ("X"), instant ("i"), and thread-metadata ("M")
 * events in memory and serializes them as one
 * {"traceEvents": [...]} document.  The writer is shared by every thread
 * of a process run (suite-runner workers emit cell events concurrently),
 * so event recording is mutex-guarded; the recording rate is bounded by
 * design — duration events per experiment cell and capped instants for
 * rare occurrences — so the lock is never on a simulator hot path.
 *
 * Lane convention: tid 0 is the main thread, tid k >= 1 is thread-pool
 * worker k-1 (util::currentWorkerId() + 1).  writeJson() emits matching
 * thread_name metadata so the lanes are labeled in the viewer.
 */
#ifndef RMCC_OBS_TRACE_WRITER_HPP
#define RMCC_OBS_TRACE_WRITER_HPP

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace rmcc::obs
{

/**
 * Thread-safe in-memory Chrome trace-event collector.
 */
class TraceWriter
{
  public:
    /** @param max_events cap on stored events; excess is counted, not kept. */
    explicit TraceWriter(std::size_t max_events = 200000);

    /** Microseconds since construction (the trace timebase). */
    double nowUs() const;

    /**
     * Record a complete ("X") duration event.
     * @param args_json rendered JSON object for "args" ("" = none).
     */
    void complete(const std::string &name, double ts_us, double dur_us,
                  int tid, const std::string &args_json = "");

    /** Record a thread-scoped instant ("i") event at the current time. */
    void instant(const std::string &name, int tid,
                 const std::string &args_json = "");

    /** Events recorded (excluding dropped ones). */
    std::size_t size() const;

    /** Events refused because the cap was reached. */
    std::uint64_t dropped() const;

    /**
     * Serialize everything (plus thread_name metadata per seen lane) to
     * path as {"traceEvents": [...]}.  @return false if the file could
     * not be opened.
     */
    bool writeJson(const std::string &path) const;

    /** Escape a string for embedding in a JSON string literal. */
    static std::string jsonEscape(const std::string &s);

  private:
    struct Event
    {
        std::string name;
        char ph;
        double ts_us;
        double dur_us; // "X" only
        int tid;
        std::string args; // rendered JSON object or empty
    };

    void push(Event e);

    mutable util::Mutex mutex_;
    std::vector<Event> events_ RMCC_GUARDED_BY(mutex_);
    std::uint64_t dropped_ RMCC_GUARDED_BY(mutex_) = 0;
    std::size_t max_events_;                  //!< Const after construction.
    std::chrono::steady_clock::time_point t0_; //!< Const after construction.
};

} // namespace rmcc::obs

#endif // RMCC_OBS_TRACE_WRITER_HPP
