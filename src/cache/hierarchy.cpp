#include "cache/hierarchy.hpp"

namespace rmcc::cache
{

Hierarchy::Hierarchy(const LevelConfig &l1, const LevelConfig &l2,
                     const LevelConfig &llc)
    : l1_("L1D", l1.size_bytes, l1.assoc),
      l2_("L2", l2.size_bytes, l2.assoc),
      llc_("LLC", llc.size_bytes, llc.assoc),
      lat1_(l1.latency_ns), lat2_(l2.latency_ns), lat3_(llc.latency_ns)
{
}

HierarchyResult
Hierarchy::access(addr::Addr paddr, bool is_write)
{
    HierarchyResult out;

    const AccessResult r1 = l1_.access(paddr, is_write);
    if (r1.writeback) {
        // Dirty L1 victim lands in L2; its own victim cascades below.
        const AccessResult w2 = l2_.fill(r1.victim_addr, true);
        if (w2.writeback) {
            const AccessResult w3 = llc_.fill(w2.victim_addr, true);
            if (w3.writeback)
                out.memory_writeback = w3.victim_addr;
        }
    }
    if (r1.hit) {
        out.hit_level = 1;
        out.hit_latency_ns = lat1_;
        return out;
    }

    const AccessResult r2 = l2_.access(paddr, false);
    if (r2.writeback) {
        const AccessResult w3 = llc_.fill(r2.victim_addr, true);
        if (w3.writeback)
            out.memory_writeback = w3.victim_addr;
    }
    if (r2.hit) {
        out.hit_level = 2;
        out.hit_latency_ns = lat1_ + lat2_;
        return out;
    }

    const AccessResult r3 = llc_.access(paddr, false);
    if (r3.writeback) {
        // Two memory writebacks per access are possible but rare; the
        // later one wins here and the earlier is still counted by the
        // caller via the llc writeback statistic.
        out.memory_writeback = r3.victim_addr;
    }
    if (r3.hit) {
        out.hit_level = 3;
        out.hit_latency_ns = lat1_ + lat2_ + lat3_;
        return out;
    }

    out.hit_level = 4;
    out.hit_latency_ns = lat1_ + lat2_ + lat3_;
    out.llc_miss = true;
    return out;
}

void
Hierarchy::resetStats()
{
    l1_.resetStats();
    l2_.resetStats();
    llc_.resetStats();
}

} // namespace rmcc::cache
