/**
 * @file
 * Generic set-associative writeback cache model.
 *
 * Used for the CPU cache hierarchy (L1D/L2/LLC), the memory controller's
 * counter cache (which holds L0 counter blocks and integrity-tree nodes),
 * and — with a different line "address" space — the TLB.
 */
#ifndef RMCC_CACHE_SET_ASSOC_HPP
#define RMCC_CACHE_SET_ASSOC_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "address/types.hpp"

namespace rmcc::cache
{

/** Replacement policy for a set-associative cache. */
enum class ReplPolicy
{
    LRU,  //!< Least-recently-used (default everywhere in the paper).
    FIFO, //!< Insertion order; used in ablation tests.
};

/** Outcome of a cache access. */
struct AccessResult
{
    bool hit = false;            //!< Line present before the access.
    bool evicted = false;        //!< A valid line was displaced.
    bool writeback = false;      //!< The displaced line was dirty.
    addr::Addr victim_addr = 0;  //!< Base address of the displaced line.
};

/**
 * Set-associative cache with allocate-on-miss and writeback semantics.
 */
class SetAssocCache
{
  public:
    /**
     * @param name stat label.
     * @param size_bytes total capacity; must be divisible by
     *        assoc * line_bytes.
     * @param assoc ways per set.
     * @param line_bytes line size (64 for all caches in the paper).
     * @param policy replacement policy.
     */
    SetAssocCache(std::string name, std::uint64_t size_bytes, unsigned assoc,
                  unsigned line_bytes = addr::kBlockSize,
                  ReplPolicy policy = ReplPolicy::LRU);

    /**
     * Access (and allocate on miss) the line containing address a.
     * Writes mark the line dirty.
     */
    AccessResult access(addr::Addr a, bool is_write);

    /**
     * Hit-only access: identical to access() when the line is present
     * (recency update, dirty marking, hit count); a no-op returning false
     * when it is not.  Lets a caller that handles misses itself (fetch,
     * then fill()) use one way-scan instead of a probe() + access() pair.
     */
    bool accessIfPresent(addr::Addr a, bool is_write);

    /** Insert without an access (e.g. prefetch fill); returns eviction. */
    AccessResult fill(addr::Addr a, bool dirty);

    /** True if the line is present; does not update recency. */
    bool probe(addr::Addr a) const;

    /**
     * Hint that the set holding address a is about to be scanned: issues
     * software prefetches for its tag and recency rows.  Pure — no state,
     * stat, or replacement decision changes — so callers may prefetch
     * speculatively (e.g. the replay loop's next record) without
     * perturbing results.
     */
    void prefetchSet(addr::Addr a) const
    {
        const std::size_t base = setIndex(a) * assoc_;
        __builtin_prefetch(&tags_[base]);
        __builtin_prefetch(&lru_[base]);
    }

    /**
     * Force the AVX2 way-scan on or off for every cache in the process
     * (default: on iff the CPU reports AVX2).  The vector and scalar
     * scans return identical ways — tags are unique within a set and
     * both pick the lowest-index match / first minimum — so this is an
     * A/B and test hook, not a behavior switch.
     */
    static void setSimdProbes(bool on);

    /** True when way scans currently use the AVX2 tag compare. */
    static bool simdProbesActive();

    /**
     * Number of valid lines whose base address lies in [lo, hi).  A full
     * tag sweep, not a per-access operation: occupancy probes (per-tenant
     * counter-cache residency) call it at reporting points only.  Pure —
     * no recency, stat, or state change.
     */
    std::uint64_t countValidIn(addr::Addr lo, addr::Addr hi) const;

    /** Drop the line if present; returns true if it was dirty. */
    bool invalidate(addr::Addr a);

    /** Mark the line dirty if present (e.g. in-place metadata update). */
    void touchDirty(addr::Addr a);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t accesses() const { return hits_ + misses_; }

    std::uint64_t sizeBytes() const { return sets_count_ * assoc_ * line_; }
    unsigned associativity() const { return assoc_; }
    std::uint64_t sets() const { return sets_count_; }
    const std::string &name() const { return name_; }

    /** Reset statistics (state is kept); used after warm-up. */
    void resetStats();

  private:
    std::uint64_t setIndex(addr::Addr a) const
    {
        const addr::Addr tag = tagOf(a);
        return sets_pow2_ ? (tag & set_mask_) : (tag % sets_count_);
    }
    addr::Addr tagOf(addr::Addr a) const
    {
        return line_pow2_ ? (a >> line_shift_) : (a / line_);
    }

    /** Find the way holding tag (MRU-hint first), or -1. */
    int findWay(std::uint64_t set, addr::Addr tag) const;

    /** Pick a victim way in the set according to the policy. */
    unsigned victimWay(std::uint64_t set) const;

    /** Place tag in the set (which must not hold it) at clock_. */
    AccessResult replaceIn(std::uint64_t set, addr::Addr tag, bool dirty);

    std::string name_;
    std::uint64_t sets_count_;
    unsigned assoc_;
    unsigned line_;
    ReplPolicy policy_;
    //! Power-of-two fast paths for the per-access index/tag math; the
    //! general divide/modulo remains for odd geometries used in tests.
    bool line_pow2_ = false, sets_pow2_ = false;
    unsigned line_shift_ = 0;
    std::uint64_t set_mask_ = 0;
    //! Tag stored in ways that hold no line.  Real tags are addresses
    //! divided by the line size, so ~0 is unreachable; encoding validity
    //! in the tag itself makes findWay a pure tag compare.
    static constexpr addr::Addr kInvalidTag = ~addr::Addr{0};

    //! Line state in structure-of-arrays form so the tag scan — the
    //! hottest loop in the whole simulator — touches one dense array
    //! instead of striding through 24-byte structs.
    std::vector<addr::Addr> tags_;
    std::vector<std::uint64_t> lru_;
    std::vector<std::uint8_t> dirty_;
    //! Most-recently-touched way per set, probed before the linear scan.
    //! A stale hint only costs one extra compare; search results are
    //! unchanged.
    std::vector<std::uint32_t> mru_;
    //! Valid lines per set; once a set is full the victim scan skips the
    //! invalid-way check and reduces to a pure LRU minimum.
    std::vector<std::uint32_t> filled_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0, misses_ = 0, writebacks_ = 0;
};

} // namespace rmcc::cache

#endif // RMCC_CACHE_SET_ASSOC_HPP
