/**
 * @file
 * Generic set-associative writeback cache model.
 *
 * Used for the CPU cache hierarchy (L1D/L2/LLC), the memory controller's
 * counter cache (which holds L0 counter blocks and integrity-tree nodes),
 * and — with a different line "address" space — the TLB.
 */
#ifndef RMCC_CACHE_SET_ASSOC_HPP
#define RMCC_CACHE_SET_ASSOC_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "address/types.hpp"

namespace rmcc::cache
{

/** Replacement policy for a set-associative cache. */
enum class ReplPolicy
{
    LRU,  //!< Least-recently-used (default everywhere in the paper).
    FIFO, //!< Insertion order; used in ablation tests.
};

/** Outcome of a cache access. */
struct AccessResult
{
    bool hit = false;            //!< Line present before the access.
    bool evicted = false;        //!< A valid line was displaced.
    bool writeback = false;      //!< The displaced line was dirty.
    addr::Addr victim_addr = 0;  //!< Base address of the displaced line.
};

/**
 * Set-associative cache with allocate-on-miss and writeback semantics.
 */
class SetAssocCache
{
  public:
    /**
     * @param name stat label.
     * @param size_bytes total capacity; must be divisible by
     *        assoc * line_bytes.
     * @param assoc ways per set.
     * @param line_bytes line size (64 for all caches in the paper).
     * @param policy replacement policy.
     */
    SetAssocCache(std::string name, std::uint64_t size_bytes, unsigned assoc,
                  unsigned line_bytes = addr::kBlockSize,
                  ReplPolicy policy = ReplPolicy::LRU);

    /**
     * Access (and allocate on miss) the line containing address a.
     * Writes mark the line dirty.
     */
    AccessResult access(addr::Addr a, bool is_write);

    /** Insert without an access (e.g. prefetch fill); returns eviction. */
    AccessResult fill(addr::Addr a, bool dirty);

    /** True if the line is present; does not update recency. */
    bool probe(addr::Addr a) const;

    /** Drop the line if present; returns true if it was dirty. */
    bool invalidate(addr::Addr a);

    /** Mark the line dirty if present (e.g. in-place metadata update). */
    void touchDirty(addr::Addr a);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t accesses() const { return hits_ + misses_; }

    std::uint64_t sizeBytes() const { return sets_count_ * assoc_ * line_; }
    unsigned associativity() const { return assoc_; }
    std::uint64_t sets() const { return sets_count_; }
    const std::string &name() const { return name_; }

    /** Reset statistics (state is kept); used after warm-up. */
    void resetStats();

  private:
    struct Line
    {
        addr::Addr tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t setIndex(addr::Addr a) const;
    addr::Addr tagOf(addr::Addr a) const { return a / line_; }

    /** Find the way holding tag, or -1. */
    int findWay(std::uint64_t set, addr::Addr tag) const;

    /** Pick a victim way in the set according to the policy. */
    unsigned victimWay(std::uint64_t set) const;

    std::string name_;
    std::uint64_t sets_count_;
    unsigned assoc_;
    unsigned line_;
    ReplPolicy policy_;
    std::vector<Line> lines_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0, misses_ = 0, writebacks_ = 0;
};

} // namespace rmcc::cache

#endif // RMCC_CACHE_SET_ASSOC_HPP
