#include "cache/tlb.hpp"

namespace rmcc::cache
{

Tlb::Tlb(unsigned entries, unsigned assoc, std::uint64_t page_bytes)
    : page_bytes_(page_bytes),
      // Model each entry as one "line" of size 1 in a page-number space.
      cache_("TLB", static_cast<std::uint64_t>(entries), assoc, 1)
{
}

bool
Tlb::access(addr::Addr vaddr)
{
    const addr::Addr vpn = vaddr / page_bytes_;
    return cache_.access(vpn, false).hit;
}

} // namespace rmcc::cache
