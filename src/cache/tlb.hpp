/**
 * @file
 * TLB model for the Fig 4 study: 1536-entry TLB under 4 KB and 2 MB pages.
 */
#ifndef RMCC_CACHE_TLB_HPP
#define RMCC_CACHE_TLB_HPP

#include <cstdint>

#include "address/page_mapper.hpp"
#include "cache/set_assoc.hpp"

namespace rmcc::cache
{

/**
 * Set-associative TLB keyed by virtual page number.
 */
class Tlb
{
  public:
    /**
     * @param entries total entries (1536 in Table I).
     * @param assoc associativity.
     * @param page_bytes page size this TLB covers.
     */
    Tlb(unsigned entries, unsigned assoc, std::uint64_t page_bytes);

    /** Look up the page of vaddr; allocates on miss. Returns hit. */
    bool access(addr::Addr vaddr);

    std::uint64_t hits() const { return cache_.hits(); }
    std::uint64_t misses() const { return cache_.misses(); }

    void resetStats() { cache_.resetStats(); }

  private:
    std::uint64_t page_bytes_;
    SetAssocCache cache_;
};

} // namespace rmcc::cache

#endif // RMCC_CACHE_TLB_HPP
