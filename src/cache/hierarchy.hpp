/**
 * @file
 * Three-level data cache hierarchy (L1D -> L2 -> LLC) producing the LLC
 * miss/writeback stream that drives the secure memory controller.
 */
#ifndef RMCC_CACHE_HIERARCHY_HPP
#define RMCC_CACHE_HIERARCHY_HPP

#include <cstdint>
#include <optional>

#include "cache/set_assoc.hpp"

namespace rmcc::cache
{

/** Sizing for one cache level. */
struct LevelConfig
{
    std::uint64_t size_bytes;
    unsigned assoc;
    double latency_ns; //!< Additive hit latency contribution (Table I).
};

/** Result of pushing one core access through the hierarchy. */
struct HierarchyResult
{
    unsigned hit_level = 0;      //!< 1..3 = cache level, 4 = memory.
    double hit_latency_ns = 0;   //!< Cumulative latency up to the hit level.
    bool llc_miss = false;       //!< Access must go to memory.
    //! Dirty LLC victim that must be written back to memory (encrypted).
    std::optional<addr::Addr> memory_writeback;
};

/**
 * Inclusive-allocation writeback hierarchy.
 *
 * Victims propagate downward: a dirty L1 victim updates L2, a dirty L2
 * victim updates the LLC, and a dirty LLC victim surfaces as a memory
 * writeback for the secure MC to encrypt and count.
 */
class Hierarchy
{
  public:
    Hierarchy(const LevelConfig &l1, const LevelConfig &l2,
              const LevelConfig &llc);

    /** Push one physical-address access through L1 -> L2 -> LLC. */
    HierarchyResult access(addr::Addr paddr, bool is_write);

    /**
     * Prefetch the tag/recency rows the next access(paddr) will scan at
     * every level.  Pure (see SetAssocCache::prefetchSet): replay loops
     * may call it for a lookahead record without changing any result.
     */
    void prefetch(addr::Addr paddr) const
    {
        l1_.prefetchSet(paddr);
        l2_.prefetchSet(paddr);
        llc_.prefetchSet(paddr);
    }

    const SetAssocCache &l1() const { return l1_; }
    const SetAssocCache &l2() const { return l2_; }
    const SetAssocCache &llc() const { return llc_; }

    /** Reset statistics on all levels. */
    void resetStats();

  private:
    SetAssocCache l1_;
    SetAssocCache l2_;
    SetAssocCache llc_;
    double lat1_, lat2_, lat3_;
};

} // namespace rmcc::cache

#endif // RMCC_CACHE_HIERARCHY_HPP
