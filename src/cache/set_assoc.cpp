#include "cache/set_assoc.hpp"

#include <bit>

#include "util/log.hpp"

namespace rmcc::cache
{

SetAssocCache::SetAssocCache(std::string name, std::uint64_t size_bytes,
                             unsigned assoc, unsigned line_bytes,
                             ReplPolicy policy)
    : name_(std::move(name)), assoc_(assoc), line_(line_bytes),
      policy_(policy)
{
    if (assoc_ == 0 || line_ == 0 ||
        size_bytes % (static_cast<std::uint64_t>(assoc_) * line_) != 0) {
        util::fatal("cache %s: size %llu not divisible by assoc*line",
                    name_.c_str(),
                    static_cast<unsigned long long>(size_bytes));
    }
    sets_count_ = size_bytes / (static_cast<std::uint64_t>(assoc_) * line_);
    line_pow2_ = std::has_single_bit(line_);
    if (line_pow2_)
        line_shift_ = static_cast<unsigned>(std::countr_zero(line_));
    sets_pow2_ = std::has_single_bit(sets_count_);
    if (sets_pow2_)
        set_mask_ = sets_count_ - 1;
    tags_.assign(sets_count_ * assoc_, kInvalidTag);
    lru_.assign(sets_count_ * assoc_, 0);
    dirty_.assign(sets_count_ * assoc_, 0);
    mru_.assign(sets_count_, 0);
    filled_.assign(sets_count_, 0);
}

int
SetAssocCache::findWay(std::uint64_t set, addr::Addr tag) const
{
    const addr::Addr *tags = &tags_[set * assoc_];
    if (tags[mru_[set]] == tag)
        return static_cast<int>(mru_[set]);
    // The hint way cannot match again, so rescanning it is one harmless
    // compare; keeping the loop branch-free lets it vectorize.
    for (unsigned w = 0; w < assoc_; ++w)
        if (tags[w] == tag)
            return static_cast<int>(w);
    return -1;
}

unsigned
SetAssocCache::victimWay(std::uint64_t set) const
{
    // Invalid ways first; otherwise smallest recency (LRU) or insertion
    // order (FIFO — lru field records fill time in that mode).
    const std::uint64_t *lru = &lru_[set * assoc_];
    if (filled_[set] < assoc_) {
        const addr::Addr *tags = &tags_[set * assoc_];
        for (unsigned w = 0; w < assoc_; ++w)
            if (tags[w] == kInvalidTag)
                return w;
    }
    unsigned victim = 0;
    std::uint64_t best = ~0ULL;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (lru[w] < best) {
            best = lru[w];
            victim = w;
        }
    }
    return victim;
}

AccessResult
SetAssocCache::replaceIn(std::uint64_t set, addr::Addr tag, bool dirty)
{
    const unsigned way = victimWay(set);
    const std::size_t li = set * assoc_ + way;
    AccessResult res;
    if (tags_[li] != kInvalidTag) {
        res.evicted = true;
        res.writeback = dirty_[li] != 0;
        res.victim_addr = tags_[li] * line_;
        if (dirty_[li])
            ++writebacks_;
    } else {
        ++filled_[set];
    }
    tags_[li] = tag;
    dirty_[li] = dirty ? 1 : 0;
    lru_[li] = clock_;
    mru_[set] = way;
    return res;
}

AccessResult
SetAssocCache::access(addr::Addr a, bool is_write)
{
    const addr::Addr tag = tagOf(a);
    const std::uint64_t set = setIndex(a);
    ++clock_;
    const int way = findWay(set, tag);
    if (way >= 0) {
        const std::size_t li = set * assoc_ + static_cast<unsigned>(way);
        if (policy_ == ReplPolicy::LRU)
            lru_[li] = clock_;
        if (is_write)
            dirty_[li] = 1;
        mru_[set] = static_cast<std::uint32_t>(way);
        ++hits_;
        return {true, false, false, 0};
    }
    ++misses_;
    // Inline the fill, skipping its redundant findWay: the set cannot
    // have gained the tag since the probe above.  The clock still
    // advances exactly as the old access() -> fill() pair did, so every
    // LRU stamp (and therefore every victim choice) is unchanged.
    ++clock_;
    return replaceIn(set, tag, is_write);
}

bool
SetAssocCache::accessIfPresent(addr::Addr a, bool is_write)
{
    const addr::Addr tag = tagOf(a);
    const std::uint64_t set = setIndex(a);
    const int way = findWay(set, tag);
    if (way < 0)
        return false;
    ++clock_;
    const std::size_t li = set * assoc_ + static_cast<unsigned>(way);
    if (policy_ == ReplPolicy::LRU)
        lru_[li] = clock_;
    if (is_write)
        dirty_[li] = 1;
    mru_[set] = static_cast<std::uint32_t>(way);
    ++hits_;
    return true;
}

AccessResult
SetAssocCache::fill(addr::Addr a, bool dirty)
{
    const addr::Addr tag = tagOf(a);
    const std::uint64_t set = setIndex(a);
    ++clock_;
    const int existing = findWay(set, tag);
    if (existing >= 0) {
        const std::size_t li =
            set * assoc_ + static_cast<unsigned>(existing);
        if (dirty)
            dirty_[li] = 1;
        if (policy_ == ReplPolicy::LRU)
            lru_[li] = clock_;
        mru_[set] = static_cast<std::uint32_t>(existing);
        return {true, false, false, 0};
    }
    return replaceIn(set, tag, dirty);
}

bool
SetAssocCache::probe(addr::Addr a) const
{
    return findWay(setIndex(a), tagOf(a)) >= 0;
}

bool
SetAssocCache::invalidate(addr::Addr a)
{
    const int way = findWay(setIndex(a), tagOf(a));
    if (way < 0)
        return false;
    const std::size_t li =
        setIndex(a) * assoc_ + static_cast<unsigned>(way);
    const bool was_dirty = dirty_[li] != 0;
    tags_[li] = kInvalidTag;
    dirty_[li] = 0;
    --filled_[setIndex(a)];
    return was_dirty;
}

void
SetAssocCache::touchDirty(addr::Addr a)
{
    const int way = findWay(setIndex(a), tagOf(a));
    if (way >= 0)
        dirty_[setIndex(a) * assoc_ + static_cast<unsigned>(way)] = 1;
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = writebacks_ = 0;
}

} // namespace rmcc::cache
