#include "cache/set_assoc.hpp"

#include <atomic>
#include <bit>

#include "crypto/dispatch.hpp"
#include "util/log.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace rmcc::cache
{

namespace
{

//! Process-wide AVX2 way-scan toggle: -1 unresolved, else 0/1.  Lazily
//! seeded from CPUID so construction order never matters; atomic so the
//! parallel suite runner's threads race benignly (TSan-clean).
std::atomic<int> g_simd_probes{-1};

#if defined(__x86_64__) || defined(__i386__)

/**
 * Compare all ways against one tag, four per 256-bit vector; returns the
 * lowest matching way or -1.  Tags are unique within a set, so "lowest
 * match" only matters for agreeing with the scalar scan when the needle
 * is kInvalidTag (the victim invalid-way probe).
 */
__attribute__((target("avx2"))) int
findWayAvx2(const addr::Addr *tags, unsigned assoc, addr::Addr tag)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(tag));
    for (unsigned w = 0; w < assoc; w += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const __m256i eq = _mm256_cmpeq_epi64(v, needle);
        const int m = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        if (m)
            return static_cast<int>(
                w + static_cast<unsigned>(
                        __builtin_ctz(static_cast<unsigned>(m))));
    }
    return -1;
}

/**
 * First way holding the minimum recency stamp.  Signed 64-bit compares
 * are safe: stamps are clock values far below 2^63.  The scalar loop
 * keeps the first occurrence of the minimum; scanning for the first way
 * equal to the vector minimum reproduces that tie-break exactly.
 */
__attribute__((target("avx2"))) unsigned
minLruWayAvx2(const std::uint64_t *lru, unsigned assoc)
{
    __m256i best = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(lru));
    for (unsigned w = 4; w < assoc; w += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lru + w));
        const __m256i gt = _mm256_cmpgt_epi64(best, v);
        best = _mm256_blendv_epi8(best, v, gt);
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), best);
    std::uint64_t m = lanes[0];
    for (int i = 1; i < 4; ++i)
        if (lanes[i] < m)
            m = lanes[i];
    unsigned w = 0;
    while (lru[w] != m)
        ++w;
    return w;
}

#endif // x86

} // namespace

void
SetAssocCache::setSimdProbes(bool on)
{
    g_simd_probes.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool
SetAssocCache::simdProbesActive()
{
    int v = g_simd_probes.load(std::memory_order_relaxed);
    if (v < 0) {
        v = crypto::detectCpuFeatures().avx2 ? 1 : 0;
        g_simd_probes.store(v, std::memory_order_relaxed);
    }
    return v == 1;
}

SetAssocCache::SetAssocCache(std::string name, std::uint64_t size_bytes,
                             unsigned assoc, unsigned line_bytes,
                             ReplPolicy policy)
    : name_(std::move(name)), assoc_(assoc), line_(line_bytes),
      policy_(policy)
{
    if (assoc_ == 0 || line_ == 0 ||
        size_bytes % (static_cast<std::uint64_t>(assoc_) * line_) != 0) {
        util::fatal("cache %s: size %llu not divisible by assoc*line",
                    name_.c_str(),
                    static_cast<unsigned long long>(size_bytes));
    }
    sets_count_ = size_bytes / (static_cast<std::uint64_t>(assoc_) * line_);
    line_pow2_ = std::has_single_bit(line_);
    if (line_pow2_)
        line_shift_ = static_cast<unsigned>(std::countr_zero(line_));
    sets_pow2_ = std::has_single_bit(sets_count_);
    if (sets_pow2_)
        set_mask_ = sets_count_ - 1;
    tags_.assign(sets_count_ * assoc_, kInvalidTag);
    lru_.assign(sets_count_ * assoc_, 0);
    dirty_.assign(sets_count_ * assoc_, 0);
    mru_.assign(sets_count_, 0);
    filled_.assign(sets_count_, 0);
}

// rmcc-lint: hot-path
int
SetAssocCache::findWay(std::uint64_t set, addr::Addr tag) const
{
    const addr::Addr *tags = &tags_[set * assoc_];
    if (tags[mru_[set]] == tag)
        return static_cast<int>(mru_[set]);
#if defined(__x86_64__) || defined(__i386__)
    if ((assoc_ & 3u) == 0 && simdProbesActive())
        return findWayAvx2(tags, assoc_, tag);
#endif
    // The hint way cannot match again, so rescanning it is one harmless
    // compare; keeping the loop branch-free lets it vectorize.
    for (unsigned w = 0; w < assoc_; ++w)
        if (tags[w] == tag)
            return static_cast<int>(w);
    return -1;
}

// rmcc-lint: hot-path
unsigned
SetAssocCache::victimWay(std::uint64_t set) const
{
    // Invalid ways first; otherwise smallest recency (LRU) or insertion
    // order (FIFO — lru field records fill time in that mode).
    const std::uint64_t *lru = &lru_[set * assoc_];
#if defined(__x86_64__) || defined(__i386__)
    const bool simd = (assoc_ & 3u) == 0 && simdProbesActive();
#endif
    if (filled_[set] < assoc_) {
        const addr::Addr *tags = &tags_[set * assoc_];
#if defined(__x86_64__) || defined(__i386__)
        if (simd) {
            const int w = findWayAvx2(tags, assoc_, kInvalidTag);
            if (w >= 0)
                return static_cast<unsigned>(w);
        }
#endif
        for (unsigned w = 0; w < assoc_; ++w)
            if (tags[w] == kInvalidTag)
                return w;
    }
#if defined(__x86_64__) || defined(__i386__)
    if (simd)
        return minLruWayAvx2(lru, assoc_);
#endif
    unsigned victim = 0;
    std::uint64_t best = ~0ULL;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (lru[w] < best) {
            best = lru[w];
            victim = w;
        }
    }
    return victim;
}

AccessResult
SetAssocCache::replaceIn(std::uint64_t set, addr::Addr tag, bool dirty)
{
    const unsigned way = victimWay(set);
    const std::size_t li = set * assoc_ + way;
    AccessResult res;
    if (tags_[li] != kInvalidTag) {
        res.evicted = true;
        res.writeback = dirty_[li] != 0;
        res.victim_addr = tags_[li] * line_;
        if (dirty_[li])
            ++writebacks_;
    } else {
        ++filled_[set];
    }
    tags_[li] = tag;
    dirty_[li] = dirty ? 1 : 0;
    lru_[li] = clock_;
    mru_[set] = way;
    return res;
}

AccessResult
SetAssocCache::access(addr::Addr a, bool is_write)
{
    const addr::Addr tag = tagOf(a);
    const std::uint64_t set = setIndex(a);
    ++clock_;
    const int way = findWay(set, tag);
    if (way >= 0) {
        const std::size_t li = set * assoc_ + static_cast<unsigned>(way);
        if (policy_ == ReplPolicy::LRU)
            lru_[li] = clock_;
        if (is_write)
            dirty_[li] = 1;
        mru_[set] = static_cast<std::uint32_t>(way);
        ++hits_;
        return {true, false, false, 0};
    }
    ++misses_;
    // Inline the fill, skipping its redundant findWay: the set cannot
    // have gained the tag since the probe above.  The clock still
    // advances exactly as the old access() -> fill() pair did, so every
    // LRU stamp (and therefore every victim choice) is unchanged.
    ++clock_;
    return replaceIn(set, tag, is_write);
}

bool
SetAssocCache::accessIfPresent(addr::Addr a, bool is_write)
{
    const addr::Addr tag = tagOf(a);
    const std::uint64_t set = setIndex(a);
    const int way = findWay(set, tag);
    if (way < 0)
        return false;
    ++clock_;
    const std::size_t li = set * assoc_ + static_cast<unsigned>(way);
    if (policy_ == ReplPolicy::LRU)
        lru_[li] = clock_;
    if (is_write)
        dirty_[li] = 1;
    mru_[set] = static_cast<std::uint32_t>(way);
    ++hits_;
    return true;
}

AccessResult
SetAssocCache::fill(addr::Addr a, bool dirty)
{
    const addr::Addr tag = tagOf(a);
    const std::uint64_t set = setIndex(a);
    ++clock_;
    const int existing = findWay(set, tag);
    if (existing >= 0) {
        const std::size_t li =
            set * assoc_ + static_cast<unsigned>(existing);
        if (dirty)
            dirty_[li] = 1;
        if (policy_ == ReplPolicy::LRU)
            lru_[li] = clock_;
        mru_[set] = static_cast<std::uint32_t>(existing);
        return {true, false, false, 0};
    }
    return replaceIn(set, tag, dirty);
}

bool
SetAssocCache::probe(addr::Addr a) const
{
    return findWay(setIndex(a), tagOf(a)) >= 0;
}

std::uint64_t
SetAssocCache::countValidIn(addr::Addr lo, addr::Addr hi) const
{
    if (lo >= hi)
        return 0;
    std::uint64_t n = 0;
    for (const addr::Addr tag : tags_) {
        if (tag == kInvalidTag)
            continue;
        const addr::Addr base =
            line_pow2_ ? (tag << line_shift_) : (tag * line_);
        n += (base >= lo && base < hi) ? 1u : 0u;
    }
    return n;
}

bool
SetAssocCache::invalidate(addr::Addr a)
{
    const int way = findWay(setIndex(a), tagOf(a));
    if (way < 0)
        return false;
    const std::size_t li =
        setIndex(a) * assoc_ + static_cast<unsigned>(way);
    const bool was_dirty = dirty_[li] != 0;
    tags_[li] = kInvalidTag;
    dirty_[li] = 0;
    --filled_[setIndex(a)];
    return was_dirty;
}

void
SetAssocCache::touchDirty(addr::Addr a)
{
    const int way = findWay(setIndex(a), tagOf(a));
    if (way >= 0)
        dirty_[setIndex(a) * assoc_ + static_cast<unsigned>(way)] = 1;
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = writebacks_ = 0;
}

} // namespace rmcc::cache
