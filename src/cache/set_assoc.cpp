#include "cache/set_assoc.hpp"

#include "util/log.hpp"

namespace rmcc::cache
{

SetAssocCache::SetAssocCache(std::string name, std::uint64_t size_bytes,
                             unsigned assoc, unsigned line_bytes,
                             ReplPolicy policy)
    : name_(std::move(name)), assoc_(assoc), line_(line_bytes),
      policy_(policy)
{
    if (assoc_ == 0 || line_ == 0 ||
        size_bytes % (static_cast<std::uint64_t>(assoc_) * line_) != 0) {
        util::fatal("cache %s: size %llu not divisible by assoc*line",
                    name_.c_str(),
                    static_cast<unsigned long long>(size_bytes));
    }
    sets_count_ = size_bytes / (static_cast<std::uint64_t>(assoc_) * line_);
    lines_.resize(sets_count_ * assoc_);
}

std::uint64_t
SetAssocCache::setIndex(addr::Addr a) const
{
    return (a / line_) % sets_count_;
}

int
SetAssocCache::findWay(std::uint64_t set, addr::Addr tag) const
{
    for (unsigned w = 0; w < assoc_; ++w) {
        const Line &l = lines_[set * assoc_ + w];
        if (l.valid && l.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

unsigned
SetAssocCache::victimWay(std::uint64_t set) const
{
    // Invalid ways first; otherwise smallest recency (LRU) or insertion
    // order (FIFO — lru field records fill time in that mode).
    unsigned victim = 0;
    std::uint64_t best = ~0ULL;
    for (unsigned w = 0; w < assoc_; ++w) {
        const Line &l = lines_[set * assoc_ + w];
        if (!l.valid)
            return w;
        if (l.lru < best) {
            best = l.lru;
            victim = w;
        }
    }
    return victim;
}

AccessResult
SetAssocCache::access(addr::Addr a, bool is_write)
{
    const addr::Addr tag = tagOf(a);
    const std::uint64_t set = setIndex(a);
    ++clock_;
    const int way = findWay(set, tag);
    if (way >= 0) {
        Line &l = lines_[set * assoc_ + static_cast<unsigned>(way)];
        if (policy_ == ReplPolicy::LRU)
            l.lru = clock_;
        l.dirty = l.dirty || is_write;
        ++hits_;
        return {true, false, false, 0};
    }
    ++misses_;
    AccessResult res = fill(a, is_write);
    res.hit = false;
    return res;
}

AccessResult
SetAssocCache::fill(addr::Addr a, bool dirty)
{
    const addr::Addr tag = tagOf(a);
    const std::uint64_t set = setIndex(a);
    ++clock_;
    const int existing = findWay(set, tag);
    if (existing >= 0) {
        Line &l = lines_[set * assoc_ + static_cast<unsigned>(existing)];
        l.dirty = l.dirty || dirty;
        if (policy_ == ReplPolicy::LRU)
            l.lru = clock_;
        return {true, false, false, 0};
    }
    const unsigned way = victimWay(set);
    Line &l = lines_[set * assoc_ + way];
    AccessResult res;
    if (l.valid) {
        res.evicted = true;
        res.writeback = l.dirty;
        res.victim_addr = l.tag * line_;
        if (l.dirty)
            ++writebacks_;
    }
    l.valid = true;
    l.tag = tag;
    l.dirty = dirty;
    l.lru = clock_;
    return res;
}

bool
SetAssocCache::probe(addr::Addr a) const
{
    return findWay(setIndex(a), tagOf(a)) >= 0;
}

bool
SetAssocCache::invalidate(addr::Addr a)
{
    const int way = findWay(setIndex(a), tagOf(a));
    if (way < 0)
        return false;
    Line &l = lines_[setIndex(a) * assoc_ + static_cast<unsigned>(way)];
    const bool was_dirty = l.dirty;
    l.valid = false;
    l.dirty = false;
    return was_dirty;
}

void
SetAssocCache::touchDirty(addr::Addr a)
{
    const int way = findWay(setIndex(a), tagOf(a));
    if (way >= 0)
        lines_[setIndex(a) * assoc_ + static_cast<unsigned>(way)].dirty =
            true;
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = writebacks_ = 0;
}

} // namespace rmcc::cache
