#include "crypto/otp.hpp"

namespace rmcc::crypto
{

namespace
{

/** Domain bytes ("mu" in paper Fig 2) separating OTP uses. */
constexpr std::uint64_t kMuEncrypt = 0xa5;
constexpr std::uint64_t kMuMac = 0x5a;

constexpr std::uint64_t kAddrMask = (1ULL << 48) - 1;

/**
 * Baseline AES input: hi = mu(8) | address(48) | word(8),
 * lo = counter(56) | zero pad(8).
 */
Block128
baselineInput(std::uint64_t mu, std::uint64_t address, unsigned word,
              std::uint64_t counter)
{
    const std::uint64_t hi =
        (mu << 56) | ((address & kAddrMask) << 8) | (word & 0xff);
    const std::uint64_t lo = (counter & kCounterMask) << 8;
    return makeBlock(hi, lo);
}

} // namespace

std::array<Block128, 4>
OtpEngine::encryptionOtps(std::uint64_t address, std::uint64_t counter) const
{
    std::array<Block128, 4> pads;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        pads[w] = encryptionOtp(address, w, counter);
    return pads;
}

BaselineOtpEngine::BaselineOtpEngine(const Aes &enc_key, const Aes &mac_key)
    : enc_key_(enc_key), mac_key_(mac_key)
{
}

Block128
BaselineOtpEngine::encryptionOtp(std::uint64_t address, unsigned word,
                                 std::uint64_t counter) const
{
    return enc_key_.encrypt(baselineInput(kMuEncrypt, address, word, counter));
}

Block128
BaselineOtpEngine::macOtp(std::uint64_t address, std::uint64_t counter) const
{
    return mac_key_.encrypt(baselineInput(kMuMac, address, 0, counter));
}

RmccOtpEngine::RmccOtpEngine(const Aes &enc_key, const Aes &mac_key)
    : enc_key_(enc_key), mac_key_(mac_key)
{
}

Block128
RmccOtpEngine::counterOnlyEnc(std::uint64_t counter) const
{
    // 72-bit zero prefix || 56-bit counter (paper Fig 11).
    return enc_key_.encrypt(makeBlock(0, counter & kCounterMask));
}

Block128
RmccOtpEngine::counterOnlyMac(std::uint64_t counter) const
{
    return mac_key_.encrypt(makeBlock(0, counter & kCounterMask));
}

Block128
RmccOtpEngine::addressOnlyEnc(std::uint64_t address, unsigned word) const
{
    // mu || address || word in the high half, 64 zero bits appended.
    const std::uint64_t hi =
        (kMuEncrypt << 56) | ((address & kAddrMask) << 8) | (word & 0xff);
    return enc_key_.encrypt(makeBlock(hi, 0));
}

Block128
RmccOtpEngine::addressOnlyMac(std::uint64_t address) const
{
    const std::uint64_t hi = (kMuMac << 56) | ((address & kAddrMask) << 8);
    return mac_key_.encrypt(makeBlock(hi, 0));
}

Block128
RmccOtpEngine::combine(const Block128 &counter_only,
                       const Block128 &address_only)
{
    return truncmulMiddle(counter_only, address_only);
}

Block128
RmccOtpEngine::encryptionOtp(std::uint64_t address, unsigned word,
                             std::uint64_t counter) const
{
    return combine(counterOnlyEnc(counter), addressOnlyEnc(address, word));
}

Block128
RmccOtpEngine::macOtp(std::uint64_t address, std::uint64_t counter) const
{
    return combine(counterOnlyMac(counter), addressOnlyMac(address));
}

std::array<Block128, 4>
RmccOtpEngine::encryptionOtps(std::uint64_t address,
                              std::uint64_t counter) const
{
    const Block128 ctr_only = counterOnlyEnc(counter);
    std::array<Block128, 4> pads;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        pads[w] = combine(ctr_only, addressOnlyEnc(address, w));
    return pads;
}

DataBlock
BlockCodec::encode(const DataBlock &block, std::uint64_t address,
                   std::uint64_t counter) const
{
    const std::array<Block128, 4> pads =
        engine_.encryptionOtps(address, counter);
    DataBlock out;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        out[w] = block[w] ^ pads[w];
    return out;
}

} // namespace rmcc::crypto
