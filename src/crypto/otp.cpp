#include "crypto/otp.hpp"

#include <algorithm>

namespace rmcc::crypto
{

namespace
{

/** Domain bytes ("mu" in paper Fig 2) separating OTP uses. */
constexpr std::uint64_t kMuEncrypt = 0xa5;
constexpr std::uint64_t kMuMac = 0x5a;

constexpr std::uint64_t kAddrMask = (1ULL << 48) - 1;

/**
 * Baseline AES input: hi = mu(8) | address(48) | word(8),
 * lo = counter(56) | zero pad(8).
 */
Block128
baselineInput(std::uint64_t mu, std::uint64_t address, unsigned word,
              std::uint64_t counter)
{
    const std::uint64_t hi =
        (mu << 56) | ((address & kAddrMask) << 8) | (word & 0xff);
    const std::uint64_t lo = (counter & kCounterMask) << 8;
    return makeBlock(hi, lo);
}

/** SplitMix64 finalizer: full-avalanche mix of one 64-bit word. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

DomainKeys
deriveDomainKeys(std::uint64_t master_seed, std::uint64_t domain)
{
    // Two independent avalanche chains per domain, one per schedule.  The
    // purpose constants keep enc/mac seeds unrelated, and the leading
    // mix64 of the tagged domain means even domain 0 derives seeds far
    // from master_seed itself — the platform schedules fromSeed(seed) /
    // fromSeed(seed + 0x9e3779b9) are never aliased by any domain.
    const std::uint64_t enc_seed =
        mix64(master_seed ^ mix64(domain ^ 0x656e63ULL)); // "enc"
    const std::uint64_t mac_seed =
        mix64(master_seed ^ mix64(domain ^ 0x6d6163ULL)); // "mac"
    return DomainKeys{Aes::fromSeed(enc_seed), Aes::fromSeed(mac_seed)};
}

std::array<Block128, 4>
OtpEngine::encryptionOtps(std::uint64_t address, std::uint64_t counter) const
{
    std::array<Block128, 4> pads;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        pads[w] = encryptionOtp(address, w, counter);
    return pads;
}

void
OtpEngine::macOtps(const std::uint64_t *addresses,
                   const std::uint64_t *counters, Block128 *out,
                   std::size_t n) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = macOtp(addresses[i], counters[i]);
}

BaselineOtpEngine::BaselineOtpEngine(const Aes &enc_key, const Aes &mac_key)
    : enc_key_(enc_key), mac_key_(mac_key)
{
}

Block128
BaselineOtpEngine::encryptionOtp(std::uint64_t address, unsigned word,
                                 std::uint64_t counter) const
{
    return enc_key_.encrypt(baselineInput(kMuEncrypt, address, word, counter));
}

Block128
BaselineOtpEngine::macOtp(std::uint64_t address, std::uint64_t counter) const
{
    return mac_key_.encrypt(baselineInput(kMuMac, address, 0, counter));
}

std::array<Block128, 4>
BaselineOtpEngine::encryptionOtps(std::uint64_t address,
                                  std::uint64_t counter) const
{
    std::array<Block128, 4> in;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        in[w] = baselineInput(kMuEncrypt, address, w, counter);
    std::array<Block128, 4> pads;
    enc_key_.encryptBlocks(in.data(), pads.data(), kWordsPerBlock);
    return pads;
}

void
BaselineOtpEngine::macOtps(const std::uint64_t *addresses,
                           const std::uint64_t *counters, Block128 *out,
                           std::size_t n) const
{
    // Chunked so arbitrarily large n never heap-allocates for inputs.
    constexpr std::size_t kChunk = 16;
    Block128 in[kChunk];
    for (std::size_t base = 0; base < n; base += kChunk) {
        const std::size_t m = std::min(kChunk, n - base);
        for (std::size_t i = 0; i < m; ++i)
            in[i] = baselineInput(kMuMac, addresses[base + i], 0,
                                  counters[base + i]);
        mac_key_.encryptBlocks(in, out + base, m);
    }
}

RmccOtpEngine::RmccOtpEngine(const Aes &enc_key, const Aes &mac_key)
    : enc_key_(enc_key), mac_key_(mac_key)
{
}

Block128
RmccOtpEngine::counterOnlyEnc(std::uint64_t counter) const
{
    // 72-bit zero prefix || 56-bit counter (paper Fig 11).
    return enc_key_.encrypt(makeBlock(0, counter & kCounterMask));
}

Block128
RmccOtpEngine::counterOnlyMac(std::uint64_t counter) const
{
    return mac_key_.encrypt(makeBlock(0, counter & kCounterMask));
}

Block128
RmccOtpEngine::addressOnlyEnc(std::uint64_t address, unsigned word) const
{
    // mu || address || word in the high half, 64 zero bits appended.
    const std::uint64_t hi =
        (kMuEncrypt << 56) | ((address & kAddrMask) << 8) | (word & 0xff);
    return enc_key_.encrypt(makeBlock(hi, 0));
}

Block128
RmccOtpEngine::addressOnlyMac(std::uint64_t address) const
{
    const std::uint64_t hi = (kMuMac << 56) | ((address & kAddrMask) << 8);
    return mac_key_.encrypt(makeBlock(hi, 0));
}

Block128
RmccOtpEngine::combine(const Block128 &counter_only,
                       const Block128 &address_only)
{
    return truncmulMiddle(counter_only, address_only);
}

Block128
RmccOtpEngine::encryptionOtp(std::uint64_t address, unsigned word,
                             std::uint64_t counter) const
{
    return combine(counterOnlyEnc(counter), addressOnlyEnc(address, word));
}

Block128
RmccOtpEngine::macOtp(std::uint64_t address, std::uint64_t counter) const
{
    return combine(counterOnlyMac(counter), addressOnlyMac(address));
}

std::array<Block128, 4>
RmccOtpEngine::encryptionOtps(std::uint64_t address,
                              std::uint64_t counter) const
{
    // One 5-block AES dispatch: the shared counter-only input plus the
    // four per-word address-only inputs, all under the encryption key.
    std::array<Block128, 5> in;
    in[0] = makeBlock(0, counter & kCounterMask);
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        in[1 + w] = makeBlock((kMuEncrypt << 56) |
                                  ((address & kAddrMask) << 8) | w,
                              0);
    std::array<Block128, 5> enc;
    enc_key_.encryptBlocks(in.data(), enc.data(), in.size());

    const std::array<Block128, 4> ctr_only = {enc[0], enc[0], enc[0],
                                              enc[0]};
    std::array<Block128, 4> pads;
    truncmulMiddleBatch(ctr_only.data(), enc.data() + 1, pads.data(),
                        kWordsPerBlock);
    return pads;
}

void
RmccOtpEngine::macOtps(const std::uint64_t *addresses,
                       const std::uint64_t *counters, Block128 *out,
                       std::size_t n) const
{
    // Chunked: 2m AES inputs (m counter-only, m address-only) share one
    // dispatch under the MAC key, then one batched combine.
    constexpr std::size_t kChunk = 8;
    Block128 in[2 * kChunk];
    Block128 enc[2 * kChunk];
    for (std::size_t base = 0; base < n; base += kChunk) {
        const std::size_t m = std::min(kChunk, n - base);
        for (std::size_t i = 0; i < m; ++i) {
            in[i] = makeBlock(0, counters[base + i] & kCounterMask);
            in[m + i] = makeBlock(
                (kMuMac << 56) | ((addresses[base + i] & kAddrMask) << 8),
                0);
        }
        mac_key_.encryptBlocks(in, enc, 2 * m);
        truncmulMiddleBatch(enc, enc + m, out + base, m);
    }
}

DataBlock
BlockCodec::encode(const DataBlock &block, std::uint64_t address,
                   std::uint64_t counter) const
{
    const std::array<Block128, 4> pads =
        engine_.encryptionOtps(address, counter);
    DataBlock out;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        out[w] = block[w] ^ pads[w];
    return out;
}

} // namespace rmcc::crypto
