/**
 * @file
 * 56-bit message authentication codes for memory blocks (paper Fig 2b).
 *
 * MAC(block) = truncate56( GF-dot-product(words, keys)  XOR  OTP ), where
 * the dot product runs in GF(2^128) with four per-word secret keys and the
 * OTP comes from the block's address and counter.  Any single-bit change in
 * the block, its address, or its counter flips the MAC with overwhelming
 * probability.
 */
#ifndef RMCC_CRYPTO_MAC_HPP
#define RMCC_CRYPTO_MAC_HPP

#include <array>
#include <cstdint>

#include "crypto/otp.hpp"

namespace rmcc::crypto
{

/** MACs are 56 bits, like SGX's per-block MAC. */
constexpr std::uint64_t kMacMask = (1ULL << 56) - 1;

/**
 * Galois MAC engine with four per-word dot-product keys.
 */
class MacEngine
{
  public:
    /** Derive the four dot-product keys from a seed. */
    explicit MacEngine(std::uint64_t key_seed);

    /** Construct with explicit dot-product keys. */
    explicit MacEngine(const std::array<Block128, kWordsPerBlock> &keys);

    /** GF(2^128) dot product of the block's words with the keys. */
    Block128 dotProduct(const DataBlock &block) const;

    /**
     * Full 56-bit MAC: XOR the dot product with the OTP and truncate.
     * @param otp the MAC OTP for (address, counter), from an OtpEngine.
     */
    std::uint64_t mac(const DataBlock &block, const Block128 &otp) const;

  private:
    std::array<Block128, kWordsPerBlock> keys_;
};

} // namespace rmcc::crypto

#endif // RMCC_CRYPTO_MAC_HPP
