/**
 * @file
 * FIPS-197 AES block cipher (AES-128 and AES-256), implemented from scratch.
 *
 * The secure-memory model in this repository uses AES exactly as SGX's
 * memory encryption engine does: as a pseudo-random function producing
 * one-time pads (OTPs) from a block's counter and address.  The simulators
 * charge the configured AES latency instead of running the cipher per
 * access; this implementation backs the functional crypto paths (examples,
 * MAC/OTP algebra tests, and the Sec IV-D randomness analysis).
 *
 * Only encryption is provided: counter-mode confidentiality and MAC
 * generation never run the inverse cipher.
 */
#ifndef RMCC_CRYPTO_AES_HPP
#define RMCC_CRYPTO_AES_HPP

#include <array>
#include <cstdint>
#include <cstddef>

namespace rmcc::crypto
{

/** A 128-bit block, byte 0 first (FIPS-197 byte order). */
using Block128 = std::array<std::uint8_t, 16>;

/** XOR two 128-bit blocks. */
Block128 operator^(const Block128 &a, const Block128 &b);

/** Pack (hi, lo) 64-bit words into a big-endian block: hi first. */
Block128 makeBlock(std::uint64_t hi, std::uint64_t lo);

/** Extract the big-endian (hi, lo) pair from a block. */
std::pair<std::uint64_t, std::uint64_t> splitBlock(const Block128 &b);

/**
 * AES cipher context with a pre-expanded key schedule.
 *
 * AES-128 runs 10 rounds; AES-256 runs 14 (the quantum-safe variant the
 * paper evaluates at 22 ns).
 */
class Aes
{
  public:
    /** Supported key sizes. */
    enum class KeySize { k128, k256 };

    /** Expand a 16-byte key (AES-128). */
    static Aes fromKey128(const std::array<std::uint8_t, 16> &key);

    /** Expand a 32-byte key (AES-256). */
    static Aes fromKey256(const std::array<std::uint8_t, 32> &key);

    /** Convenience: derive a key schedule from a 64-bit seed (non-NIST). */
    static Aes fromSeed(std::uint64_t seed, KeySize size = KeySize::k128);

    /**
     * Encrypt one 128-bit block (fast path).
     *
     * Rounds run in 32-bit T-table form: SubBytes, ShiftRows, and
     * MixColumns collapse into four 256-entry word tables, generated
     * once at startup from the FIPS-197 S-box.  Produces bit-identical
     * output to encryptReference().
     */
    Block128 encrypt(const Block128 &plaintext) const;

    /**
     * Encrypt n independent blocks under this key schedule in one
     * dispatch.  With the hardware path and batching active
     * (RMCC_CRYPTO_BATCH, see crypto/dispatch.hpp) the blocks pipeline
     * through the interleaved AES-NI kernel 4-8 streams at a time;
     * otherwise each block runs the scalar kernel in a loop, so results
     * are bit-identical in every mode.  in == out aliasing is allowed.
     */
    void encryptBlocks(const Block128 *in, Block128 *out,
                       std::size_t n) const;

    /**
     * Encrypt one block with the byte-wise FIPS-197 reference rounds
     * (the original implementation).  Kept as the oracle the T-table
     * path and its startup-generated tables are verified against.
     */
    Block128 encryptReference(const Block128 &plaintext) const;

    /** Number of rounds (10 for AES-128, 14 for AES-256). */
    int rounds() const { return rounds_; }

    /**
     * Round keys serialized to FIPS-197 byte order, 16 bytes per round
     * key, 16 * (rounds + 1) bytes total — the layout AESENC consumes.
     */
    const std::uint8_t *roundKeyBytes() const
    {
        return round_key_bytes_.data();
    }

  private:
    Aes() = default;

    void expandKey(const std::uint8_t *key, std::size_t key_words);

    /** The T-table rounds with no dispatch or op counting (the software
     *  body encrypt() and encryptBlocks() route to). */
    Block128 encryptSw(const Block128 &plaintext) const;

    /** Round keys as 4-byte words; 4 * (rounds + 1) words. */
    std::array<std::uint32_t, 60> round_keys_{};
    /** The same schedule as bytes (see roundKeyBytes()). */
    std::array<std::uint8_t, 240> round_key_bytes_{};
    int rounds_ = 0;
};

} // namespace rmcc::crypto

#endif // RMCC_CRYPTO_AES_HPP
