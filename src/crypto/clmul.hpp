/**
 * @file
 * Carry-less (GF(2)[x]) multiplication and GF(2^128) arithmetic.
 *
 * RMCC combines an address-only AES result with a memoized counter-only AES
 * result via a truncated 128x128 -> 128 carry-less multiplication (paper
 * Fig 11, "keep the 128 bits in the middle").  The Galois-field dot product
 * used by the MAC (paper Fig 2b) reduces products modulo the GCM polynomial
 * x^128 + x^7 + x^2 + x + 1.
 */
#ifndef RMCC_CRYPTO_CLMUL_HPP
#define RMCC_CRYPTO_CLMUL_HPP

#include <array>
#include <cstdint>

#include "crypto/aes.hpp"

namespace rmcc::crypto
{

/** A 256-bit carry-less product, little-endian 64-bit limbs. */
struct U256
{
    std::array<std::uint64_t, 4> limb{};

    bool operator==(const U256 &other) const = default;
};

/**
 * 64x64 -> 128 carry-less multiply; returns {lo, hi}.
 *
 * Fast path: 4-bit windowed multiply (a 16-entry table of the multiples
 * b*u for u in GF(2)[x] degree < 4, consumed in 16 nibble steps) instead
 * of the 64-iteration bit loop.
 */
std::pair<std::uint64_t, std::uint64_t> clmul64(std::uint64_t a,
                                                std::uint64_t b);

/**
 * Bit-at-a-time shift-and-xor reference multiply (the original
 * implementation); the oracle the windowed path is verified against.
 */
std::pair<std::uint64_t, std::uint64_t> clmul64Reference(std::uint64_t a,
                                                         std::uint64_t b);

/**
 * 128x128 -> 256 carry-less multiply of two blocks.
 *
 * Blocks are interpreted as big-endian 128-bit polynomials (bit 0 of the
 * polynomial = least-significant bit of byte 15).
 */
U256 clmul128(const Block128 &a, const Block128 &b);

/**
 * 128x128 -> 256 carry-less multiply of n independent (a, b) pairs in one
 * dispatch.  With the hardware path and batching active (RMCC_CRYPTO_BATCH,
 * see crypto/dispatch.hpp) pairs pipeline through the interleaved PCLMULQDQ
 * kernel; otherwise each pair runs the scalar kernel in a loop, so results
 * are limb-identical in every mode.
 */
void clmul128Batch(const Block128 *a, const Block128 *b, U256 *out,
                   std::size_t n);

/**
 * RMCC's truncated multiply: the middle 128 bits (bits 64..191) of the
 * 256-bit carry-less product.  Cutting 64 bits from each end discards 128
 * bits of information, which is what makes the combine non-invertible
 * (Sec IV-D1).
 */
Block128 truncmulMiddle(const Block128 &a, const Block128 &b);

/** Batched truncmulMiddle over n independent pairs (one clmul dispatch). */
void truncmulMiddleBatch(const Block128 *a, const Block128 *b,
                         Block128 *out, std::size_t n);

/** GF(2^128) multiply with reduction modulo x^128 + x^7 + x^2 + x + 1. */
Block128 gf128Mul(const Block128 &a, const Block128 &b);

/**
 * Reduce a 256-bit carry-less product modulo x^128 + x^7 + x^2 + x + 1.
 * gf128Mul(a, b) == gf128Reduce(clmul128(a, b)); exposed so batched MAC
 * dot products can run all multiplies in one dispatch and reduce each
 * partial product afterwards.
 */
Block128 gf128Reduce(const U256 &p);

} // namespace rmcc::crypto

#endif // RMCC_CRYPTO_CLMUL_HPP
