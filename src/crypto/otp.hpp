/**
 * @file
 * One-time-pad (OTP) construction for counter-mode secure memory.
 *
 * Two constructions are provided:
 *
 *  - BaselineOtpEngine: the SGX-style OTP of paper Fig 2.  One AES call
 *    takes the block's counter AND address (plus word index and a domain
 *    byte) simultaneously; the OTP cannot be started until the counter is
 *    known.
 *
 *  - RmccOtpEngine: the split OTP of paper Fig 11.  One AES call depends
 *    only on the counter (with a 72-bit zero prefix) and one only on the
 *    address (with a 64-bit zero suffix); a truncated carry-less multiply
 *    combines the two.  The zero padding gives domain separation so that
 *    swapping (address, counter) can never reproduce an OTP (type-A repeat
 *    elimination, Sec IV-D1).
 *
 * Both engines hold two key schedules: OTPs for encryption and for MAC
 * generation use different AES keys, as in SGX.
 */
#ifndef RMCC_CRYPTO_OTP_HPP
#define RMCC_CRYPTO_OTP_HPP

#include <array>
#include <cstdint>

#include "crypto/aes.hpp"
#include "crypto/clmul.hpp"

namespace rmcc::crypto
{

/** A 64-byte memory block as four 128-bit words. */
using DataBlock = std::array<Block128, 4>;

/** Number of 128-bit words per 64 B block. */
constexpr unsigned kWordsPerBlock = 4;

/** Counters are 56-bit values (SGX counter width). */
constexpr std::uint64_t kCounterMask = (1ULL << 56) - 1;

/** Abstract OTP provider: everything decryption/verification needs. */
class OtpEngine
{
  public:
    virtual ~OtpEngine() = default;

    /**
     * OTP used to encrypt/decrypt one 128-bit word.
     *
     * @param address 48-bit block address (byte address of the 64 B block).
     * @param word word index within the block, 0..3.
     * @param counter 56-bit write counter.
     */
    virtual Block128 encryptionOtp(std::uint64_t address, unsigned word,
                                   std::uint64_t counter) const = 0;

    /** OTP used to compute the block's MAC. */
    virtual Block128 macOtp(std::uint64_t address,
                            std::uint64_t counter) const = 0;

    /**
     * All four per-word encryption OTPs of one 64 B block.  The default
     * calls encryptionOtp() per word; engines with shareable per-block
     * state (RMCC's counter-only AES result) override it so that state
     * is computed once per block instead of once per word.  Both concrete
     * engines also batch the block's AES inputs through a single
     * Aes::encryptBlocks dispatch so independent words pipeline through
     * AES-NI (see crypto/dispatch.hpp); results are bit-identical to the
     * per-word path in every mode.
     */
    virtual std::array<Block128, 4>
    encryptionOtps(std::uint64_t address, std::uint64_t counter) const;

    /**
     * MAC OTPs for n independent (address, counter) pairs in one call.
     * The default loops over macOtp(); the concrete engines batch all n
     * AES inputs through one Aes::encryptBlocks dispatch so independent
     * in-flight reads (e.g. the integrity chain levels of one verify)
     * pipeline through AES-NI.  Bit-identical to per-call macOtp().
     */
    virtual void macOtps(const std::uint64_t *addresses,
                         const std::uint64_t *counters, Block128 *out,
                         std::size_t n) const;
};

/** SGX-style single-AES OTP (paper Fig 2). */
class BaselineOtpEngine : public OtpEngine
{
  public:
    /** Create with independent encryption and MAC keys. */
    BaselineOtpEngine(const Aes &enc_key, const Aes &mac_key);

    Block128 encryptionOtp(std::uint64_t address, unsigned word,
                           std::uint64_t counter) const override;
    Block128 macOtp(std::uint64_t address,
                    std::uint64_t counter) const override;

    /** All four word OTPs via one batched AES dispatch. */
    std::array<Block128, 4>
    encryptionOtps(std::uint64_t address,
                   std::uint64_t counter) const override;

    /** n MAC OTPs via one batched AES dispatch. */
    void macOtps(const std::uint64_t *addresses,
                 const std::uint64_t *counters, Block128 *out,
                 std::size_t n) const override;

  private:
    Aes enc_key_;
    Aes mac_key_;
};

/** RMCC's split OTP (paper Fig 11). */
class RmccOtpEngine : public OtpEngine
{
  public:
    /** Create with independent encryption and MAC keys. */
    RmccOtpEngine(const Aes &enc_key, const Aes &mac_key);

    /**
     * Counter-only AES result for encryption OTPs; this is the value RMCC
     * memoizes.  Input block = 72 zero bits || 56-bit counter.
     */
    Block128 counterOnlyEnc(std::uint64_t counter) const;

    /** Counter-only AES result for MAC OTPs (different key). */
    Block128 counterOnlyMac(std::uint64_t counter) const;

    /**
     * Address-only AES result for encryption OTPs.  Input block =
     * mu || 48-bit address || word index || 64 zero bits.
     */
    Block128 addressOnlyEnc(std::uint64_t address, unsigned word) const;

    /** Address-only AES result for MAC OTPs. */
    Block128 addressOnlyMac(std::uint64_t address) const;

    /** Combine two partial results: truncated middle of the CLMUL. */
    static Block128 combine(const Block128 &counter_only,
                            const Block128 &address_only);

    Block128 encryptionOtp(std::uint64_t address, unsigned word,
                           std::uint64_t counter) const override;
    Block128 macOtp(std::uint64_t address,
                    std::uint64_t counter) const override;

    /**
     * Per-block fast path: the counter-only AES result is shared by all
     * four words of a block, so compute it once and run only the four
     * address-only AES calls plus combines (5 AES calls per block
     * instead of 8).  All five AES inputs go through one batched
     * encryptBlocks dispatch and the four combines through one batched
     * truncmulMiddle dispatch.
     */
    std::array<Block128, 4>
    encryptionOtps(std::uint64_t address,
                   std::uint64_t counter) const override;

    /**
     * n MAC OTPs in one call: the n counter-only and n address-only AES
     * inputs share a single 2n-block encryptBlocks dispatch, then one
     * batched truncmulMiddle combines them.
     */
    void macOtps(const std::uint64_t *addresses,
                 const std::uint64_t *counters, Block128 *out,
                 std::size_t n) const override;

  private:
    Aes enc_key_;
    Aes mac_key_;
};

/**
 * One tenant key domain's AES schedules: independent encryption and MAC
 * keys derived from a platform master seed and the domain id.
 */
struct DomainKeys
{
    Aes enc;
    Aes mac;
};

/**
 * Derive a tenant domain's key pair from a platform master seed.
 * SplitMix-style mixing of (seed, domain) feeds Aes::fromSeed, so equal
 * (seed, domain) pairs always derive the same schedules and distinct
 * domains get unrelated keys.  Domain 0 is deliberately distinct from
 * the undomained fromSeed(seed) schedules: a derived domain never
 * aliases the platform keys protecting the counter tree.
 */
DomainKeys deriveDomainKeys(std::uint64_t master_seed,
                            std::uint64_t domain);

/**
 * Encrypt/decrypt whole 64 B blocks with any OTP engine.  XOR with the OTP
 * is an involution, so encode() serves both directions.
 */
class BlockCodec
{
  public:
    /** The codec borrows the engine; it must outlive the codec. */
    explicit BlockCodec(const OtpEngine &engine) : engine_(engine) {}

    /** XOR all four words with their per-word OTPs. */
    DataBlock encode(const DataBlock &block, std::uint64_t address,
                     std::uint64_t counter) const;

  private:
    const OtpEngine &engine_;
};

} // namespace rmcc::crypto

#endif // RMCC_CRYPTO_OTP_HPP
