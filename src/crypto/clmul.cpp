#include "crypto/clmul.hpp"

#include <algorithm>

#include "crypto/dispatch.hpp"

namespace rmcc::crypto
{

std::pair<std::uint64_t, std::uint64_t>
clmul64Reference(std::uint64_t a, std::uint64_t b)
{
    // Shift-and-xor schoolbook multiply in GF(2)[x]; branch-light form that
    // conditions on each bit of a.
    std::uint64_t lo = 0, hi = 0;
    for (int i = 0; i < 64; ++i) {
        if ((a >> i) & 1) {
            lo ^= b << i;
            if (i)
                hi ^= b >> (64 - i);
        }
    }
    return {lo, hi};
}

std::pair<std::uint64_t, std::uint64_t>
clmul64(std::uint64_t a, std::uint64_t b)
{
    // 4-bit windowed multiply.  T[u] = b * u for every degree-<4
    // polynomial u; each product is at most 67 bits, so it carries up to
    // three bits into the high limb.
    std::uint64_t t_lo[16], t_hi[16];
    t_lo[0] = 0;
    t_hi[0] = 0;
    t_lo[1] = b;
    t_hi[1] = 0;
    for (unsigned u = 2; u < 16; ++u) {
        if (u & 1) {
            t_lo[u] = t_lo[u - 1] ^ b;
            t_hi[u] = t_hi[u - 1];
        } else {
            t_lo[u] = t_lo[u >> 1] << 1;
            t_hi[u] = (t_hi[u >> 1] << 1) | (t_lo[u >> 1] >> 63);
        }
    }

    // Consume a in nibbles, most significant first, shifting the
    // accumulator left by the window width between steps.
    std::uint64_t lo = 0, hi = 0;
    for (int shift = 60; shift >= 0; shift -= 4) {
        hi = (hi << 4) | (lo >> 60);
        lo <<= 4;
        const unsigned u = static_cast<unsigned>(a >> shift) & 0xf;
        lo ^= t_lo[u];
        hi ^= t_hi[u];
    }
    return {lo, hi};
}

namespace
{

/** Big-endian block -> (hi, lo) polynomial limbs. */
std::pair<std::uint64_t, std::uint64_t>
toLimbs(const Block128 &b)
{
    return splitBlock(b);
}

/** The software 128x128 multiply body (no dispatch, no op counting). */
U256
clmul128Sw(const Block128 &a, const Block128 &b)
{
    const auto [a_hi, a_lo] = toLimbs(a);
    const auto [b_hi, b_lo] = toLimbs(b);

    const auto [ll_lo, ll_hi] = clmul64(a_lo, b_lo);
    const auto [hh_lo, hh_hi] = clmul64(a_hi, b_hi);
    const auto [lh_lo, lh_hi] = clmul64(a_lo, b_hi);
    const auto [hl_lo, hl_hi] = clmul64(a_hi, b_lo);

    U256 out;
    out.limb[0] = ll_lo;
    out.limb[1] = ll_hi ^ lh_lo ^ hl_lo;
    out.limb[2] = hh_lo ^ lh_hi ^ hl_hi;
    out.limb[3] = hh_hi;
    return out;
}

} // namespace

U256
clmul128(const Block128 &a, const Block128 &b)
{
    const bool hw = detail::dispatchState().hw_clmul;
    detail::countClmul(hw);
    if (hw)
        return detail::clmul128Hw(a, b);
    return clmul128Sw(a, b);
}

void
clmul128Batch(const Block128 *a, const Block128 *b, U256 *out,
              std::size_t n)
{
    const detail::DispatchState &st = detail::dispatchState();
    if (st.hw_clmul) {
        const bool batched = st.batch_clmul && n > 1;
        detail::countClmulN(true, n, batched);
        if (batched) {
            detail::clmul128HwBatch(a, b, out, n);
            return;
        }
        for (std::size_t i = 0; i < n; ++i)
            out[i] = detail::clmul128Hw(a[i], b[i]);
        return;
    }
    detail::countClmulN(false, n, false);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = clmul128Sw(a[i], b[i]);
}

Block128
truncmulMiddle(const Block128 &a, const Block128 &b)
{
    const U256 p = clmul128(a, b);
    // Middle 128 bits: limbs 1 (low half) and 2 (high half).
    return makeBlock(p.limb[2], p.limb[1]);
}

void
truncmulMiddleBatch(const Block128 *a, const Block128 *b, Block128 *out,
                    std::size_t n)
{
    // Chunked so arbitrarily large n never heap-allocates for products.
    constexpr std::size_t kChunk = 16;
    U256 prods[kChunk];
    for (std::size_t base = 0; base < n; base += kChunk) {
        const std::size_t m = std::min(kChunk, n - base);
        clmul128Batch(a + base, b + base, prods, m);
        for (std::size_t i = 0; i < m; ++i)
            out[base + i] = makeBlock(prods[i].limb[2], prods[i].limb[1]);
    }
}

Block128
gf128Mul(const Block128 &a, const Block128 &b)
{
    return gf128Reduce(clmul128(a, b));
}

Block128
gf128Reduce(const U256 &p)
{
    // Reduce the 256-bit product modulo x^128 + x^7 + x^2 + x + 1.
    // Folding a bit at position 128+i adds bits at i+7, i+2, i+1, i.
    std::uint64_t r[4] = {p.limb[0], p.limb[1], p.limb[2], p.limb[3]};
    auto fold_word = [&](int w) {
        // Fold r[w] (holding bits [64w, 64w+64)) down by 128 bits.
        const std::uint64_t x = r[w];
        r[w] = 0;
        const int dst = w - 2;
        auto xor_shifted = [&](int shift) {
            // XOR x << shift into bits starting at 64*dst.
            r[dst] ^= x << shift;
            if (shift)
                r[dst + 1] ^= x >> (64 - shift);
        };
        xor_shifted(0);
        xor_shifted(1);
        xor_shifted(2);
        xor_shifted(7);
    };
    fold_word(3);
    fold_word(2);
    return makeBlock(r[1], r[0]);
}

} // namespace rmcc::crypto
