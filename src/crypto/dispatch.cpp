#include "crypto/dispatch.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define RMCC_CRYPTO_X86 1
#include <immintrin.h>
#endif

namespace rmcc::crypto
{

CpuFeatures
detectCpuFeatures()
{
    CpuFeatures f;
#ifdef RMCC_CRYPTO_X86
    f.aesni = __builtin_cpu_supports("aes");
    f.pclmul = __builtin_cpu_supports("pclmul");
    f.avx2 = __builtin_cpu_supports("avx2");
#endif
    return f;
}

CryptoImpl
configuredCryptoImpl()
{
    const std::string v =
        util::envChoice("RMCC_CRYPTO_IMPL", {"auto", "hw", "sw"}, "auto");
    if (v == "hw")
        return CryptoImpl::Hw;
    if (v == "sw")
        return CryptoImpl::Sw;
    return CryptoImpl::Auto;
}

CryptoBatch
configuredCryptoBatch()
{
    const std::string v =
        util::envChoice("RMCC_CRYPTO_BATCH", {"auto", "on", "off"},
                        "auto");
    if (v == "on")
        return CryptoBatch::On;
    if (v == "off")
        return CryptoBatch::Off;
    return CryptoBatch::Auto;
}

CryptoOpCounts
cryptoOpCounts()
{
    CryptoOpCounts c;
    c.aes_hw = detail::g_aes_hw.load(std::memory_order_relaxed);
    c.aes_sw = detail::g_aes_sw.load(std::memory_order_relaxed);
    c.clmul_hw = detail::g_clmul_hw.load(std::memory_order_relaxed);
    c.clmul_sw = detail::g_clmul_sw.load(std::memory_order_relaxed);
    c.aes_batch_calls =
        detail::g_aes_batch_calls.load(std::memory_order_relaxed);
    c.clmul_batch_calls =
        detail::g_clmul_batch_calls.load(std::memory_order_relaxed);
    return c;
}

void
setCryptoOpCounting(bool on)
{
    detail::g_count_ops.store(on, std::memory_order_relaxed);
}

bool
cryptoOpCountingEnabled()
{
    return detail::g_count_ops.load(std::memory_order_relaxed);
}

namespace detail
{

std::atomic<bool> g_count_ops{false};
std::atomic<std::uint64_t> g_aes_hw{0};
std::atomic<std::uint64_t> g_aes_sw{0};
std::atomic<std::uint64_t> g_clmul_hw{0};
std::atomic<std::uint64_t> g_clmul_sw{0};
std::atomic<std::uint64_t> g_aes_batch_calls{0};
std::atomic<std::uint64_t> g_clmul_batch_calls{0};

namespace
{

DispatchState
resolveFromEnv()
{
    DispatchState s;
    s.mode = configuredCryptoImpl();
    s.batch_mode = configuredCryptoBatch();
    if (s.mode != CryptoImpl::Sw) {
        const CpuFeatures f = detectCpuFeatures();
        if (s.mode == CryptoImpl::Hw) {
            if (!f.aesni || !f.pclmul)
                throw std::runtime_error(
                    "RMCC_CRYPTO_IMPL=hw: this CPU does not support "
                    "AES-NI and PCLMULQDQ");
            s.hw_aes = true;
            s.hw_clmul = true;
        } else {
            s.hw_aes = f.aesni;
            s.hw_clmul = f.pclmul;
        }
    }
    // The pipelined kernels exist only for the hardware paths; batching
    // the software T-table loop would just be the loop it already is.
    switch (s.batch_mode) {
    case CryptoBatch::Off:
        break;
    case CryptoBatch::On:
        if (!s.hw_aes || !s.hw_clmul)
            throw std::runtime_error(
                "RMCC_CRYPTO_BATCH=on requires the hardware crypto "
                "kernels (CPU support and RMCC_CRYPTO_IMPL != sw)");
        s.batch_aes = true;
        s.batch_clmul = true;
        break;
    case CryptoBatch::Auto:
        s.batch_aes = s.hw_aes;
        s.batch_clmul = s.hw_clmul;
        break;
    }
    return s;
}

DispatchState &
mutableState()
{
    static DispatchState state = resolveFromEnv();
    return state;
}

} // namespace

const DispatchState &
dispatchState()
{
    return mutableState();
}

#ifdef RMCC_CRYPTO_X86

__attribute__((target("aes,sse2"))) Block128
aesEncryptHw(const std::uint8_t *round_key_bytes, int rounds,
             const Block128 &plaintext)
{
    const auto *rk =
        reinterpret_cast<const __m128i *>(round_key_bytes);
    __m128i s = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(plaintext.data()));
    s = _mm_xor_si128(s, _mm_loadu_si128(rk));
    for (int r = 1; r < rounds; ++r)
        s = _mm_aesenc_si128(s, _mm_loadu_si128(rk + r));
    s = _mm_aesenclast_si128(s, _mm_loadu_si128(rk + rounds));
    Block128 out;
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out.data()), s);
    return out;
}

// rmcc-lint: hot-path
__attribute__((target("aes,sse2"))) void
aesEncryptHwBatch(const std::uint8_t *round_key_bytes, int rounds,
                  const Block128 *in, Block128 *out, std::size_t n)
{
    const auto *rk =
        reinterpret_cast<const __m128i *>(round_key_bytes);
    // Hoist the schedule into registers once per call: every stream of
    // every group reuses it, and 15 __m128i values fit alongside the
    // stream states on x86-64's 16 XMM registers with spills the
    // compiler schedules far better than per-round reloads.
    std::size_t i = 0;

    // Main pipeline: 8 independent streams advance one round at a time,
    // so 8 AESENCs are in flight per round instead of one block's
    // serialized round chain.
    for (; i + 8 <= n; i += 8) {
        __m128i s[8];
        const __m128i k0 = _mm_loadu_si128(rk);
        for (int j = 0; j < 8; ++j) {
            s[j] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in[i + j].data()));
            s[j] = _mm_xor_si128(s[j], k0);
        }
        for (int r = 1; r < rounds; ++r) {
            const __m128i k = _mm_loadu_si128(rk + r);
            for (int j = 0; j < 8; ++j)
                s[j] = _mm_aesenc_si128(s[j], k);
        }
        const __m128i kl = _mm_loadu_si128(rk + rounds);
        for (int j = 0; j < 8; ++j) {
            s[j] = _mm_aesenclast_si128(s[j], kl);
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(out[i + j].data()), s[j]);
        }
    }

    // 4-stream group for the common one-cache-line tail (4 words).
    for (; i + 4 <= n; i += 4) {
        __m128i s[4];
        const __m128i k0 = _mm_loadu_si128(rk);
        for (int j = 0; j < 4; ++j) {
            s[j] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in[i + j].data()));
            s[j] = _mm_xor_si128(s[j], k0);
        }
        for (int r = 1; r < rounds; ++r) {
            const __m128i k = _mm_loadu_si128(rk + r);
            for (int j = 0; j < 4; ++j)
                s[j] = _mm_aesenc_si128(s[j], k);
        }
        const __m128i kl = _mm_loadu_si128(rk + rounds);
        for (int j = 0; j < 4; ++j) {
            s[j] = _mm_aesenclast_si128(s[j], kl);
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(out[i + j].data()), s[j]);
        }
    }

    for (; i < n; ++i)
        out[i] = aesEncryptHw(round_key_bytes, rounds, in[i]);
}

__attribute__((target("pclmul,sse2"))) U256
clmul128Hw(const Block128 &a, const Block128 &b)
{
    const auto [a_hi, a_lo] = splitBlock(a);
    const auto [b_hi, b_lo] = splitBlock(b);
    const __m128i va = _mm_set_epi64x(static_cast<long long>(a_hi),
                                      static_cast<long long>(a_lo));
    const __m128i vb = _mm_set_epi64x(static_cast<long long>(b_hi),
                                      static_cast<long long>(b_lo));
    // Four 64x64 partial products, recombined exactly like the software
    // path so the 256-bit result is limb-for-limb identical.
    const __m128i ll = _mm_clmulepi64_si128(va, vb, 0x00); // a_lo * b_lo
    const __m128i hh = _mm_clmulepi64_si128(va, vb, 0x11); // a_hi * b_hi
    const __m128i lh = _mm_clmulepi64_si128(va, vb, 0x10); // a_lo * b_hi
    const __m128i hl = _mm_clmulepi64_si128(va, vb, 0x01); // a_hi * b_lo
    const __m128i mid = _mm_xor_si128(lh, hl);

    std::uint64_t w_ll[2], w_hh[2], w_mid[2];
    _mm_storeu_si128(reinterpret_cast<__m128i *>(w_ll), ll);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(w_hh), hh);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(w_mid), mid);

    U256 out;
    out.limb[0] = w_ll[0];
    out.limb[1] = w_ll[1] ^ w_mid[0];
    out.limb[2] = w_hh[0] ^ w_mid[1];
    out.limb[3] = w_hh[1];
    return out;
}

namespace
{

/** One pipelined pair of clmul128HwBatch; always inlined into the batch
 *  loop so adjacent pairs' eight PCLMULQDQs interleave in the schedule. */
__attribute__((target("pclmul,sse2"), always_inline)) inline void
clmulPairHw(const Block128 &pa, const Block128 &pb, U256 &po)
{
    const auto [a_hi, a_lo] = splitBlock(pa);
    const auto [b_hi, b_lo] = splitBlock(pb);
    const __m128i va = _mm_set_epi64x(static_cast<long long>(a_hi),
                                      static_cast<long long>(a_lo));
    const __m128i vb = _mm_set_epi64x(static_cast<long long>(b_hi),
                                      static_cast<long long>(b_lo));
    const __m128i ll = _mm_clmulepi64_si128(va, vb, 0x00);
    const __m128i hh = _mm_clmulepi64_si128(va, vb, 0x11);
    const __m128i lh = _mm_clmulepi64_si128(va, vb, 0x10);
    const __m128i hl = _mm_clmulepi64_si128(va, vb, 0x01);
    const __m128i mid = _mm_xor_si128(lh, hl);
    std::uint64_t w_ll[2], w_hh[2], w_mid[2];
    _mm_storeu_si128(reinterpret_cast<__m128i *>(w_ll), ll);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(w_hh), hh);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(w_mid), mid);
    po.limb[0] = w_ll[0];
    po.limb[1] = w_ll[1] ^ w_mid[0];
    po.limb[2] = w_hh[0] ^ w_mid[1];
    po.limb[3] = w_hh[1];
}

} // namespace

// rmcc-lint: hot-path
__attribute__((target("pclmul,sse2"))) void
clmul128HwBatch(const Block128 *a, const Block128 *b, U256 *out,
                std::size_t n)
{
    // Two pairs per step: eight PCLMULQDQs issue back to back, covering
    // the instruction's multi-cycle latency with independent work.  The
    // recombination is limb-for-limb the clmul128Hw/software layout.
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        clmulPairHw(a[i], b[i], out[i]);
        clmulPairHw(a[i + 1], b[i + 1], out[i + 1]);
    }
    if (i < n)
        clmulPairHw(a[i], b[i], out[i]);
}

#else // !RMCC_CRYPTO_X86

// Non-x86 builds never resolve hw_aes/hw_clmul to true, so these bodies
// are unreachable; they exist only to satisfy the linker.
Block128
aesEncryptHw(const std::uint8_t *, int, const Block128 &)
{
    std::abort();
}

void
aesEncryptHwBatch(const std::uint8_t *, int, const Block128 *, Block128 *,
                  std::size_t)
{
    std::abort();
}

U256
clmul128Hw(const Block128 &, const Block128 &)
{
    std::abort();
}

void
clmul128HwBatch(const Block128 *, const Block128 *, U256 *, std::size_t)
{
    std::abort();
}

#endif // RMCC_CRYPTO_X86

} // namespace detail

bool
hwAesActive()
{
    return detail::dispatchState().hw_aes;
}

bool
hwClmulActive()
{
    return detail::dispatchState().hw_clmul;
}

bool
batchAesActive()
{
    return detail::dispatchState().batch_aes;
}

bool
batchClmulActive()
{
    return detail::dispatchState().batch_clmul;
}

void
reresolveCryptoDispatch()
{
    // Resolve first so a throwing resolution leaves the old routing.
    const detail::DispatchState fresh = detail::resolveFromEnv();
    detail::mutableState() = fresh;
}

} // namespace rmcc::crypto
