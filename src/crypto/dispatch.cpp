#include "crypto/dispatch.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define RMCC_CRYPTO_X86 1
#include <immintrin.h>
#endif

namespace rmcc::crypto
{

CpuFeatures
detectCpuFeatures()
{
    CpuFeatures f;
#ifdef RMCC_CRYPTO_X86
    f.aesni = __builtin_cpu_supports("aes");
    f.pclmul = __builtin_cpu_supports("pclmul");
#endif
    return f;
}

CryptoImpl
configuredCryptoImpl()
{
    const std::string v =
        util::envChoice("RMCC_CRYPTO_IMPL", {"auto", "hw", "sw"}, "auto");
    if (v == "hw")
        return CryptoImpl::Hw;
    if (v == "sw")
        return CryptoImpl::Sw;
    return CryptoImpl::Auto;
}

CryptoOpCounts
cryptoOpCounts()
{
    CryptoOpCounts c;
    c.aes_hw = detail::g_aes_hw.load(std::memory_order_relaxed);
    c.aes_sw = detail::g_aes_sw.load(std::memory_order_relaxed);
    c.clmul_hw = detail::g_clmul_hw.load(std::memory_order_relaxed);
    c.clmul_sw = detail::g_clmul_sw.load(std::memory_order_relaxed);
    return c;
}

void
setCryptoOpCounting(bool on)
{
    detail::g_count_ops.store(on, std::memory_order_relaxed);
}

bool
cryptoOpCountingEnabled()
{
    return detail::g_count_ops.load(std::memory_order_relaxed);
}

namespace detail
{

std::atomic<bool> g_count_ops{false};
std::atomic<std::uint64_t> g_aes_hw{0};
std::atomic<std::uint64_t> g_aes_sw{0};
std::atomic<std::uint64_t> g_clmul_hw{0};
std::atomic<std::uint64_t> g_clmul_sw{0};

namespace
{

DispatchState
resolveFromEnv()
{
    DispatchState s;
    s.mode = configuredCryptoImpl();
    if (s.mode == CryptoImpl::Sw)
        return s;
    const CpuFeatures f = detectCpuFeatures();
    if (s.mode == CryptoImpl::Hw) {
        if (!f.aesni || !f.pclmul)
            throw std::runtime_error(
                "RMCC_CRYPTO_IMPL=hw: this CPU does not support "
                "AES-NI and PCLMULQDQ");
        s.hw_aes = true;
        s.hw_clmul = true;
        return s;
    }
    s.hw_aes = f.aesni;
    s.hw_clmul = f.pclmul;
    return s;
}

DispatchState &
mutableState()
{
    static DispatchState state = resolveFromEnv();
    return state;
}

} // namespace

const DispatchState &
dispatchState()
{
    return mutableState();
}

#ifdef RMCC_CRYPTO_X86

__attribute__((target("aes,sse2"))) Block128
aesEncryptHw(const std::uint8_t *round_key_bytes, int rounds,
             const Block128 &plaintext)
{
    const auto *rk =
        reinterpret_cast<const __m128i *>(round_key_bytes);
    __m128i s = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(plaintext.data()));
    s = _mm_xor_si128(s, _mm_loadu_si128(rk));
    for (int r = 1; r < rounds; ++r)
        s = _mm_aesenc_si128(s, _mm_loadu_si128(rk + r));
    s = _mm_aesenclast_si128(s, _mm_loadu_si128(rk + rounds));
    Block128 out;
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out.data()), s);
    return out;
}

__attribute__((target("pclmul,sse2"))) U256
clmul128Hw(const Block128 &a, const Block128 &b)
{
    const auto [a_hi, a_lo] = splitBlock(a);
    const auto [b_hi, b_lo] = splitBlock(b);
    const __m128i va = _mm_set_epi64x(static_cast<long long>(a_hi),
                                      static_cast<long long>(a_lo));
    const __m128i vb = _mm_set_epi64x(static_cast<long long>(b_hi),
                                      static_cast<long long>(b_lo));
    // Four 64x64 partial products, recombined exactly like the software
    // path so the 256-bit result is limb-for-limb identical.
    const __m128i ll = _mm_clmulepi64_si128(va, vb, 0x00); // a_lo * b_lo
    const __m128i hh = _mm_clmulepi64_si128(va, vb, 0x11); // a_hi * b_hi
    const __m128i lh = _mm_clmulepi64_si128(va, vb, 0x10); // a_lo * b_hi
    const __m128i hl = _mm_clmulepi64_si128(va, vb, 0x01); // a_hi * b_lo
    const __m128i mid = _mm_xor_si128(lh, hl);

    std::uint64_t w_ll[2], w_hh[2], w_mid[2];
    _mm_storeu_si128(reinterpret_cast<__m128i *>(w_ll), ll);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(w_hh), hh);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(w_mid), mid);

    U256 out;
    out.limb[0] = w_ll[0];
    out.limb[1] = w_ll[1] ^ w_mid[0];
    out.limb[2] = w_hh[0] ^ w_mid[1];
    out.limb[3] = w_hh[1];
    return out;
}

#else // !RMCC_CRYPTO_X86

// Non-x86 builds never resolve hw_aes/hw_clmul to true, so these bodies
// are unreachable; they exist only to satisfy the linker.
Block128
aesEncryptHw(const std::uint8_t *, int, const Block128 &)
{
    std::abort();
}

U256
clmul128Hw(const Block128 &, const Block128 &)
{
    std::abort();
}

#endif // RMCC_CRYPTO_X86

} // namespace detail

bool
hwAesActive()
{
    return detail::dispatchState().hw_aes;
}

bool
hwClmulActive()
{
    return detail::dispatchState().hw_clmul;
}

void
reresolveCryptoDispatch()
{
    // Resolve first so a throwing resolution leaves the old routing.
    const detail::DispatchState fresh = detail::resolveFromEnv();
    detail::mutableState() = fresh;
}

} // namespace rmcc::crypto
