#include "crypto/aes.hpp"

#include <cassert>
#include <utility>

#include "crypto/dispatch.hpp"

namespace rmcc::crypto
{

namespace
{

/** FIPS-197 S-box. */
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

/** Round constants for key expansion. */
constexpr std::uint8_t kRcon[15] = {
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80,
    0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
};

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint32_t
subWord(std::uint32_t w)
{
    return (static_cast<std::uint32_t>(kSbox[(w >> 24) & 0xff]) << 24) |
           (static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xff]) << 8) |
           static_cast<std::uint32_t>(kSbox[w & 0xff]);
}

std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

/**
 * Round tables for the T-table fast path.  Te0[x] packs one column's
 * worth of SubBytes+MixColumns for state byte x:
 *
 *   Te0[x] = (2*S[x], S[x], S[x], 3*S[x])   (MSB first, GF(2^8) scale)
 *
 * and Te1..Te3 are byte rotations of Te0 for the other three rows; the
 * row offsets in the lookup indices implement ShiftRows.
 */
struct EncTables
{
    std::uint32_t te0[256];
    std::uint32_t te1[256];
    std::uint32_t te2[256];
    std::uint32_t te3[256];
};

const EncTables &
encTables()
{
    static const EncTables tables = [] {
        EncTables t{};
        for (int i = 0; i < 256; ++i) {
            const std::uint8_t s = kSbox[i];
            const std::uint8_t s2 = xtime(s);
            const std::uint8_t s3 = static_cast<std::uint8_t>(s ^ s2);
            const std::uint32_t w = (static_cast<std::uint32_t>(s2) << 24) |
                                    (static_cast<std::uint32_t>(s) << 16) |
                                    (static_cast<std::uint32_t>(s) << 8) |
                                    static_cast<std::uint32_t>(s3);
            t.te0[i] = w;
            t.te1[i] = (w >> 8) | (w << 24);
            t.te2[i] = (w >> 16) | (w << 16);
            t.te3[i] = (w >> 24) | (w << 8);
        }
        return t;
    }();
    return tables;
}

} // namespace

Block128
operator^(const Block128 &a, const Block128 &b)
{
    Block128 out;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = a[i] ^ b[i];
    return out;
}

Block128
makeBlock(std::uint64_t hi, std::uint64_t lo)
{
    Block128 b;
    for (int i = 0; i < 8; ++i) {
        b[i] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
        b[8 + i] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    }
    return b;
}

std::pair<std::uint64_t, std::uint64_t>
splitBlock(const Block128 &b)
{
    std::uint64_t hi = 0, lo = 0;
    for (int i = 0; i < 8; ++i) {
        hi = (hi << 8) | b[i];
        lo = (lo << 8) | b[8 + i];
    }
    return {hi, lo};
}

Aes
Aes::fromKey128(const std::array<std::uint8_t, 16> &key)
{
    Aes aes;
    aes.rounds_ = 10;
    aes.expandKey(key.data(), 4);
    return aes;
}

Aes
Aes::fromKey256(const std::array<std::uint8_t, 32> &key)
{
    Aes aes;
    aes.rounds_ = 14;
    aes.expandKey(key.data(), 8);
    return aes;
}

Aes
Aes::fromSeed(std::uint64_t seed, KeySize size)
{
    // SplitMix-style expansion of the seed into key bytes; convenience for
    // simulation keys, not a NIST KDF.
    auto mix = [](std::uint64_t &x) {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    std::uint64_t x = seed;
    if (size == KeySize::k128) {
        std::array<std::uint8_t, 16> key;
        for (int w = 0; w < 2; ++w) {
            const std::uint64_t v = mix(x);
            for (int i = 0; i < 8; ++i)
                key[8 * w + i] = static_cast<std::uint8_t>(v >> (8 * i));
        }
        return fromKey128(key);
    }
    std::array<std::uint8_t, 32> key;
    for (int w = 0; w < 4; ++w) {
        const std::uint64_t v = mix(x);
        for (int i = 0; i < 8; ++i)
            key[8 * w + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    return fromKey256(key);
}

void
Aes::expandKey(const std::uint8_t *key, std::size_t key_words)
{
    const std::size_t total_words = 4 * (static_cast<std::size_t>(rounds_) + 1);
    for (std::size_t i = 0; i < key_words; ++i) {
        round_keys_[i] =
            (static_cast<std::uint32_t>(key[4 * i]) << 24) |
            (static_cast<std::uint32_t>(key[4 * i + 1]) << 16) |
            (static_cast<std::uint32_t>(key[4 * i + 2]) << 8) |
            static_cast<std::uint32_t>(key[4 * i + 3]);
    }
    for (std::size_t i = key_words; i < total_words; ++i) {
        std::uint32_t temp = round_keys_[i - 1];
        if (i % key_words == 0) {
            temp = subWord(rotWord(temp)) ^
                   (static_cast<std::uint32_t>(kRcon[i / key_words - 1])
                    << 24);
        } else if (key_words > 6 && i % key_words == 4) {
            temp = subWord(temp);
        }
        round_keys_[i] = round_keys_[i - key_words] ^ temp;
    }
    for (std::size_t i = 0; i < total_words; ++i) {
        round_key_bytes_[4 * i + 0] =
            static_cast<std::uint8_t>(round_keys_[i] >> 24);
        round_key_bytes_[4 * i + 1] =
            static_cast<std::uint8_t>(round_keys_[i] >> 16);
        round_key_bytes_[4 * i + 2] =
            static_cast<std::uint8_t>(round_keys_[i] >> 8);
        round_key_bytes_[4 * i + 3] =
            static_cast<std::uint8_t>(round_keys_[i]);
    }
}

Block128
Aes::encrypt(const Block128 &plaintext) const
{
    assert(rounds_ == 10 || rounds_ == 14);
    const bool hw = detail::dispatchState().hw_aes;
    detail::countAes(hw);
    if (hw)
        return detail::aesEncryptHw(round_key_bytes_.data(), rounds_,
                                    plaintext);
    return encryptSw(plaintext);
}

void
Aes::encryptBlocks(const Block128 *in, Block128 *out, std::size_t n) const
{
    assert(rounds_ == 10 || rounds_ == 14);
    const detail::DispatchState &st = detail::dispatchState();
    if (st.hw_aes) {
        const bool batched = st.batch_aes && n > 1;
        detail::countAesN(true, n, batched);
        if (batched) {
            detail::aesEncryptHwBatch(round_key_bytes_.data(), rounds_,
                                      in, out, n);
            return;
        }
        for (std::size_t i = 0; i < n; ++i)
            out[i] = detail::aesEncryptHw(round_key_bytes_.data(),
                                          rounds_, in[i]);
        return;
    }
    detail::countAesN(false, n, false);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = encryptSw(in[i]);
}

Block128
Aes::encryptSw(const Block128 &plaintext) const
{
    const EncTables &T = encTables();

    // One 32-bit word per state column, row 0 in the MSB — the same
    // packing the round keys use.
    auto load = [&](int c) {
        return (static_cast<std::uint32_t>(plaintext[4 * c + 0]) << 24) |
               (static_cast<std::uint32_t>(plaintext[4 * c + 1]) << 16) |
               (static_cast<std::uint32_t>(plaintext[4 * c + 2]) << 8) |
               static_cast<std::uint32_t>(plaintext[4 * c + 3]);
    };
    std::uint32_t s0 = load(0) ^ round_keys_[0];
    std::uint32_t s1 = load(1) ^ round_keys_[1];
    std::uint32_t s2 = load(2) ^ round_keys_[2];
    std::uint32_t s3 = load(3) ^ round_keys_[3];

    for (int round = 1; round < rounds_; ++round) {
        const std::uint32_t *rk =
            &round_keys_[static_cast<std::size_t>(4 * round)];
        const std::uint32_t t0 = T.te0[s0 >> 24] ^
                                 T.te1[(s1 >> 16) & 0xff] ^
                                 T.te2[(s2 >> 8) & 0xff] ^
                                 T.te3[s3 & 0xff] ^ rk[0];
        const std::uint32_t t1 = T.te0[s1 >> 24] ^
                                 T.te1[(s2 >> 16) & 0xff] ^
                                 T.te2[(s3 >> 8) & 0xff] ^
                                 T.te3[s0 & 0xff] ^ rk[1];
        const std::uint32_t t2 = T.te0[s2 >> 24] ^
                                 T.te1[(s3 >> 16) & 0xff] ^
                                 T.te2[(s0 >> 8) & 0xff] ^
                                 T.te3[s1 & 0xff] ^ rk[2];
        const std::uint32_t t3 = T.te0[s3 >> 24] ^
                                 T.te1[(s0 >> 16) & 0xff] ^
                                 T.te2[(s1 >> 8) & 0xff] ^
                                 T.te3[s2 & 0xff] ^ rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows only (no MixColumns).
    const std::uint32_t *rk =
        &round_keys_[static_cast<std::size_t>(4 * rounds_)];
    auto last = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                    std::uint32_t d, std::uint32_t k) {
        return ((static_cast<std::uint32_t>(kSbox[a >> 24]) << 24) |
                (static_cast<std::uint32_t>(kSbox[(b >> 16) & 0xff]) << 16) |
                (static_cast<std::uint32_t>(kSbox[(c >> 8) & 0xff]) << 8) |
                static_cast<std::uint32_t>(kSbox[d & 0xff])) ^
               k;
    };
    const std::uint32_t o0 = last(s0, s1, s2, s3, rk[0]);
    const std::uint32_t o1 = last(s1, s2, s3, s0, rk[1]);
    const std::uint32_t o2 = last(s2, s3, s0, s1, rk[2]);
    const std::uint32_t o3 = last(s3, s0, s1, s2, rk[3]);

    Block128 out;
    const std::uint32_t words[4] = {o0, o1, o2, o3};
    for (int c = 0; c < 4; ++c) {
        out[static_cast<std::size_t>(4 * c + 0)] =
            static_cast<std::uint8_t>(words[c] >> 24);
        out[static_cast<std::size_t>(4 * c + 1)] =
            static_cast<std::uint8_t>(words[c] >> 16);
        out[static_cast<std::size_t>(4 * c + 2)] =
            static_cast<std::uint8_t>(words[c] >> 8);
        out[static_cast<std::size_t>(4 * c + 3)] =
            static_cast<std::uint8_t>(words[c]);
    }
    return out;
}

Block128
Aes::encryptReference(const Block128 &plaintext) const
{
    assert(rounds_ == 10 || rounds_ == 14);
    std::uint8_t s[16];
    // Load state column-major per FIPS-197: s[row + 4*col] = in[4*col+row].
    for (int i = 0; i < 16; ++i)
        s[i] = plaintext[static_cast<std::size_t>(i)];

    auto add_round_key = [&](int round) {
        for (int c = 0; c < 4; ++c) {
            const std::uint32_t w =
                round_keys_[static_cast<std::size_t>(4 * round + c)];
            s[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
            s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
            s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
            s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
        }
    };
    auto sub_bytes = [&]() {
        for (auto &b : s)
            b = kSbox[b];
    };
    auto shift_rows = [&]() {
        // Row r rotates left by r; state is stored as 4 columns of 4 bytes.
        std::uint8_t t[16];
        for (int c = 0; c < 4; ++c)
            for (int r = 0; r < 4; ++r)
                t[4 * c + r] = s[4 * ((c + r) % 4) + r];
        for (int i = 0; i < 16; ++i)
            s[i] = t[i];
    };
    auto mix_columns = [&]() {
        for (int c = 0; c < 4; ++c) {
            std::uint8_t *col = &s[4 * c];
            const std::uint8_t a0 = col[0], a1 = col[1];
            const std::uint8_t a2 = col[2], a3 = col[3];
            const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
            col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(a0 ^ a1));
            col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(a1 ^ a2));
            col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(a2 ^ a3));
            col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(a3 ^ a0));
        }
    };

    add_round_key(0);
    for (int round = 1; round < rounds_; ++round) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(rounds_);

    Block128 out;
    for (int i = 0; i < 16; ++i)
        out[static_cast<std::size_t>(i)] = s[i];
    return out;
}

} // namespace rmcc::crypto
