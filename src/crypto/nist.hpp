/**
 * @file
 * A subset of the NIST SP 800-22 statistical test suite.
 *
 * Paper Sec IV-D validates the "OTPs look random" assumption by checking
 * that RMCC's truncated-multiply OTP stream passes NIST randomness tests at
 * the same rate as raw AES output.  This module implements six SP 800-22
 * tests (frequency, block frequency, runs, longest-run-of-ones, serial, and
 * approximate entropy) over arbitrary bitstreams so the claim can be
 * reproduced (see bench_secIVD_nist_randomness).
 */
#ifndef RMCC_CRYPTO_NIST_HPP
#define RMCC_CRYPTO_NIST_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rmcc::crypto
{

/**
 * A packed bitstream with append-by-byte/block helpers.
 */
class BitStream
{
  public:
    /** Append one byte (LSB-first bit order). */
    void appendByte(std::uint8_t byte);

    /** Append a range of bytes. */
    void appendBytes(const std::uint8_t *data, std::size_t n);

    /** Bit i of the stream (0/1). */
    int bit(std::size_t i) const;

    /** Number of bits. */
    std::size_t size() const { return nbits_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::size_t nbits_ = 0;
};

/** Result of one statistical test. */
struct NistResult
{
    std::string name;   //!< Test name.
    double p_value;     //!< Test p-value in [0, 1].
    bool pass;          //!< p_value >= 0.01 (NIST default significance).
};

/** SP 800-22 2.1: frequency (monobit) test. */
NistResult frequencyTest(const BitStream &bits);

/** SP 800-22 2.2: block frequency test with block size m. */
NistResult blockFrequencyTest(const BitStream &bits, std::size_t m = 128);

/** SP 800-22 2.3: runs test. */
NistResult runsTest(const BitStream &bits);

/** SP 800-22 2.4: longest run of ones in 128-bit blocks (M = 128). */
NistResult longestRunTest(const BitStream &bits);

/** SP 800-22 2.11: serial test with pattern length m (uses m and m-1). */
NistResult serialTest(const BitStream &bits, std::size_t m = 3);

/** SP 800-22 2.12: approximate entropy test with pattern length m. */
NistResult approximateEntropyTest(const BitStream &bits, std::size_t m = 3);

/** Run the whole battery. */
std::vector<NistResult> runNistBattery(const BitStream &bits);

/**
 * Regularized upper incomplete gamma function Q(a, x); exposed because the
 * tests need it and it is handy to verify independently.
 */
double igamc(double a, double x);

} // namespace rmcc::crypto

#endif // RMCC_CRYPTO_NIST_HPP
