#include "crypto/nist.hpp"

#include <array>
#include <cmath>

namespace rmcc::crypto
{

void
BitStream::appendByte(std::uint8_t byte)
{
    bytes_.push_back(byte);
    nbits_ += 8;
}

void
BitStream::appendBytes(const std::uint8_t *data, std::size_t n)
{
    bytes_.insert(bytes_.end(), data, data + n);
    nbits_ += 8 * n;
}

int
BitStream::bit(std::size_t i) const
{
    return (bytes_[i / 8] >> (i % 8)) & 1;
}

namespace
{

constexpr double kAlpha = 0.01;

/** Series expansion of P(a, x) for x < a + 1. */
double
igamLower(double a, double x)
{
    double sum = 1.0 / a;
    double term = sum;
    for (int n = 1; n < 1000; ++n) {
        term *= x / (a + n);
        sum += term;
        if (term < sum * 1e-15)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Continued fraction for Q(a, x) for x >= a + 1 (Lentz's algorithm). */
double
igamUpperCf(double a, double x)
{
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i < 1000; ++i) {
        const double an = -static_cast<double>(i) * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < 1e-15)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

} // namespace

double
igamc(double a, double x)
{
    if (x <= 0.0 || a <= 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - igamLower(a, x);
    return igamUpperCf(a, x);
}

NistResult
frequencyTest(const BitStream &bits)
{
    const std::size_t n = bits.size();
    long long s = 0;
    for (std::size_t i = 0; i < n; ++i)
        s += bits.bit(i) ? 1 : -1;
    const double s_obs =
        std::fabs(static_cast<double>(s)) / std::sqrt(static_cast<double>(n));
    const double p = std::erfc(s_obs / std::sqrt(2.0));
    return {"frequency", p, p >= kAlpha};
}

NistResult
blockFrequencyTest(const BitStream &bits, std::size_t m)
{
    const std::size_t n = bits.size();
    const std::size_t blocks = n / m;
    double chi2 = 0.0;
    for (std::size_t b = 0; b < blocks; ++b) {
        std::size_t ones = 0;
        for (std::size_t i = 0; i < m; ++i)
            ones += static_cast<std::size_t>(bits.bit(b * m + i));
        const double pi = static_cast<double>(ones) / static_cast<double>(m);
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * static_cast<double>(m);
    const double p = igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0);
    return {"block-frequency", p, p >= kAlpha};
}

NistResult
runsTest(const BitStream &bits)
{
    const std::size_t n = bits.size();
    std::size_t ones = 0;
    for (std::size_t i = 0; i < n; ++i)
        ones += static_cast<std::size_t>(bits.bit(i));
    const double pi = static_cast<double>(ones) / static_cast<double>(n);
    // Prerequisite frequency check per SP 800-22.
    if (std::fabs(pi - 0.5) >= 2.0 / std::sqrt(static_cast<double>(n)))
        return {"runs", 0.0, false};
    std::size_t v = 1;
    for (std::size_t i = 1; i < n; ++i)
        v += static_cast<std::size_t>(bits.bit(i) != bits.bit(i - 1));
    const double num =
        std::fabs(static_cast<double>(v) -
                  2.0 * static_cast<double>(n) * pi * (1.0 - pi));
    const double den =
        2.0 * std::sqrt(2.0 * static_cast<double>(n)) * pi * (1.0 - pi);
    const double p = std::erfc(num / den);
    return {"runs", p, p >= kAlpha};
}

NistResult
longestRunTest(const BitStream &bits)
{
    // M = 128 variant: K = 5, categories <=4, 5, 6, 7, 8, >=9.
    constexpr std::size_t kM = 128;
    constexpr std::array<double, 6> kPi = {
        0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
    const std::size_t blocks = bits.size() / kM;
    std::array<std::uint64_t, 6> v{};
    for (std::size_t b = 0; b < blocks; ++b) {
        std::size_t longest = 0, run = 0;
        for (std::size_t i = 0; i < kM; ++i) {
            if (bits.bit(b * kM + i)) {
                ++run;
                longest = std::max(longest, run);
            } else {
                run = 0;
            }
        }
        std::size_t cat;
        if (longest <= 4)
            cat = 0;
        else if (longest >= 9)
            cat = 5;
        else
            cat = longest - 4;
        ++v[cat];
    }
    double chi2 = 0.0;
    const double nb = static_cast<double>(blocks);
    for (std::size_t k = 0; k < v.size(); ++k) {
        const double expect = nb * kPi[k];
        const double diff = static_cast<double>(v[k]) - expect;
        chi2 += diff * diff / expect;
    }
    const double p = igamc(2.5, chi2 / 2.0);
    return {"longest-run", p, p >= kAlpha};
}

namespace
{

/** psi^2_m statistic for the serial test (overlapping m-bit patterns). */
double
psiSquared(const BitStream &bits, std::size_t m)
{
    if (m == 0)
        return 0.0;
    const std::size_t n = bits.size();
    std::vector<std::uint64_t> counts(std::size_t{1} << m, 0);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t idx = 0;
        for (std::size_t j = 0; j < m; ++j)
            idx = (idx << 1) | static_cast<std::size_t>(
                                   bits.bit((i + j) % n));
        ++counts[idx];
    }
    double sum = 0.0;
    for (auto c : counts)
        sum += static_cast<double>(c) * static_cast<double>(c);
    const double dn = static_cast<double>(n);
    return sum * static_cast<double>(std::size_t{1} << m) / dn - dn;
}

} // namespace

NistResult
serialTest(const BitStream &bits, std::size_t m)
{
    const double psi_m = psiSquared(bits, m);
    const double psi_m1 = psiSquared(bits, m - 1);
    const double psi_m2 = m >= 2 ? psiSquared(bits, m - 2) : 0.0;
    const double d1 = psi_m - psi_m1;
    const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
    const double p1 =
        igamc(std::pow(2.0, static_cast<double>(m) - 2.0), d1 / 2.0);
    const double p2 =
        igamc(std::pow(2.0, static_cast<double>(m) - 3.0), d2 / 2.0);
    const double p = std::min(p1, p2);
    return {"serial", p, p >= kAlpha};
}

NistResult
approximateEntropyTest(const BitStream &bits, std::size_t m)
{
    const std::size_t n = bits.size();
    auto phi = [&](std::size_t mm) {
        if (mm == 0)
            return 0.0;
        std::vector<std::uint64_t> counts(std::size_t{1} << mm, 0);
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t idx = 0;
            for (std::size_t j = 0; j < mm; ++j)
                idx = (idx << 1) |
                      static_cast<std::size_t>(bits.bit((i + j) % n));
            ++counts[idx];
        }
        double acc = 0.0;
        for (auto c : counts) {
            if (c == 0)
                continue;
            const double pi =
                static_cast<double>(c) / static_cast<double>(n);
            acc += pi * std::log(pi);
        }
        return acc;
    };
    const double ap_en = phi(m) - phi(m + 1);
    const double chi2 =
        2.0 * static_cast<double>(n) * (std::log(2.0) - ap_en);
    const double p =
        igamc(std::pow(2.0, static_cast<double>(m) - 1.0), chi2 / 2.0);
    return {"approx-entropy", p, p >= kAlpha};
}

std::vector<NistResult>
runNistBattery(const BitStream &bits)
{
    return {
        frequencyTest(bits),
        blockFrequencyTest(bits),
        runsTest(bits),
        longestRunTest(bits),
        serialTest(bits),
        approximateEntropyTest(bits),
    };
}

} // namespace rmcc::crypto
