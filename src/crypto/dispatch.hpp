/**
 * @file
 * Runtime dispatch between the portable software crypto kernels and the
 * hardware AES-NI / PCLMULQDQ instruction paths.
 *
 * The software implementations in aes.cpp / clmul.cpp remain the oracle of
 * correctness: the hardware kernels compute the exact same functions
 * (FIPS-197 AES, 128x128 carry-less multiply) and are verified against
 * them bit-for-bit by the test suite.  Routing is decided once per process
 * from RMCC_CRYPTO_IMPL:
 *
 *   auto (default)  use hardware kernels iff the CPU supports them
 *   hw              require hardware kernels; throw if the CPU cannot
 *   sw              force the portable software kernels
 *
 * A second knob, RMCC_CRYPTO_BATCH, controls whether the block-batch
 * entry points (Aes::encryptBlocks, clmul128Batch) pipeline independent
 * blocks through the interleaved AES-NI / PCLMULQDQ kernels or fall back
 * to a per-block loop over the scalar kernels:
 *
 *   auto (default)  pipeline iff the hardware kernels are active
 *   on              require the pipelined kernels; throw without them
 *   off             per-block scalar loop (bit-identical, for A/B tests)
 *
 * Batching never changes results — the pipelined kernels run the same
 * per-block function on independent blocks — so every simulator output is
 * bit-identical across all four {impl} x {batch} combinations.
 *
 * Invalid values throw via util::envChoice's strict parsing.
 */
#ifndef RMCC_CRYPTO_DISPATCH_HPP
#define RMCC_CRYPTO_DISPATCH_HPP

#include <atomic>
#include <cstdint>

#include "crypto/clmul.hpp"

namespace rmcc::crypto
{

/** The three RMCC_CRYPTO_IMPL policies. */
enum class CryptoImpl
{
    Auto, //!< Hardware when supported, software otherwise (default).
    Hw,   //!< Hardware required; resolution throws without CPU support.
    Sw,   //!< Software forced.
};

/** The three RMCC_CRYPTO_BATCH policies. */
enum class CryptoBatch
{
    Auto, //!< Pipelined kernels when hardware is active (default).
    On,   //!< Pipelined kernels required; resolution throws without them.
    Off,  //!< Per-block scalar loops forced.
};

/** CPUID-derived instruction-set support. */
struct CpuFeatures
{
    bool aesni = false;  //!< AESENC/AESENCLAST available.
    bool pclmul = false; //!< PCLMULQDQ available.
    bool avx2 = false;   //!< 256-bit integer SIMD (cache tag probes).
};

/** Probe the running CPU (all-false on non-x86 builds). */
CpuFeatures detectCpuFeatures();

/** The policy parsed from RMCC_CRYPTO_IMPL ("auto" when unset). */
CryptoImpl configuredCryptoImpl();

/** The policy parsed from RMCC_CRYPTO_BATCH ("auto" when unset). */
CryptoBatch configuredCryptoBatch();

/** True when AES encryption is currently routed to AES-NI. */
bool hwAesActive();

/** True when clmul128 is currently routed to PCLMULQDQ. */
bool hwClmulActive();

/** True when Aes::encryptBlocks pipelines via the interleaved kernel. */
bool batchAesActive();

/** True when clmul128Batch pipelines via the interleaved kernel. */
bool batchClmulActive();

/**
 * Re-read RMCC_CRYPTO_IMPL and RMCC_CRYPTO_BATCH and recompute the
 * routing.  Test hook: lets a test force =sw and =hw (and batch on/off)
 * in one process and compare the kernels.  Throws (leaving the previous
 * routing in place) on an invalid value, on =hw without CPU support, or
 * on batch=on without active hardware kernels.  Not thread-safe; call
 * only while no other thread is inside a crypto kernel.
 */
void reresolveCryptoDispatch();

/**
 * Process-global crypto operation counts, split by routing.  Maintained
 * only while setCryptoOpCounting(true) is active (observability turns it
 * on); otherwise the kernels pay a single relaxed bool load.  Counts are
 * cumulative across the process — consumers (the obs epoch sampler) take
 * deltas, and a parallel suite mixes cells' operations together.
 */
struct CryptoOpCounts
{
    std::uint64_t aes_hw = 0;   //!< AES block encryptions via AES-NI.
    std::uint64_t aes_sw = 0;   //!< AES block encryptions in software.
    std::uint64_t clmul_hw = 0; //!< 128-bit clmuls via PCLMULQDQ.
    std::uint64_t clmul_sw = 0; //!< 128-bit clmuls in software.
    //! Dispatches through the pipelined multi-block AES kernel.  Each
    //! batched call also adds its per-block count to aes_hw, so hw + sw
    //! always totals the blocks processed regardless of batching.
    std::uint64_t aes_batch_calls = 0;
    //! Dispatches through the pipelined multi-block CLMUL kernel.
    std::uint64_t clmul_batch_calls = 0;
};

/** Snapshot the global counters (all zero until counting is enabled). */
CryptoOpCounts cryptoOpCounts();

/** Enable/disable op counting; counters keep their values when off. */
void setCryptoOpCounting(bool on);

/** True when kernels currently increment the op counters. */
bool cryptoOpCountingEnabled();

namespace detail
{

//! Counting gate + counters; relaxed atomics, hot-path cost when
//! disabled is one non-contended load.
extern std::atomic<bool> g_count_ops;
extern std::atomic<std::uint64_t> g_aes_hw;
extern std::atomic<std::uint64_t> g_aes_sw;
extern std::atomic<std::uint64_t> g_clmul_hw;
extern std::atomic<std::uint64_t> g_clmul_sw;
extern std::atomic<std::uint64_t> g_aes_batch_calls;
extern std::atomic<std::uint64_t> g_clmul_batch_calls;

inline void
countAes(bool hw)
{
    if (g_count_ops.load(std::memory_order_relaxed))
        (hw ? g_aes_hw : g_aes_sw).fetch_add(1, std::memory_order_relaxed);
}

inline void
countClmul(bool hw)
{
    if (g_count_ops.load(std::memory_order_relaxed))
        (hw ? g_clmul_hw : g_clmul_sw)
            .fetch_add(1, std::memory_order_relaxed);
}

/** Count n AES block encryptions from one batch entry-point call. */
inline void
countAesN(bool hw, std::uint64_t n, bool batched)
{
    if (!g_count_ops.load(std::memory_order_relaxed))
        return;
    (hw ? g_aes_hw : g_aes_sw).fetch_add(n, std::memory_order_relaxed);
    if (batched)
        g_aes_batch_calls.fetch_add(1, std::memory_order_relaxed);
}

/** Count n 128-bit clmuls from one batch entry-point call. */
inline void
countClmulN(bool hw, std::uint64_t n, bool batched)
{
    if (!g_count_ops.load(std::memory_order_relaxed))
        return;
    (hw ? g_clmul_hw : g_clmul_sw)
        .fetch_add(n, std::memory_order_relaxed);
    if (batched)
        g_clmul_batch_calls.fetch_add(1, std::memory_order_relaxed);
}

/** Resolved routing; read per call by the dispatching entry points. */
struct DispatchState
{
    CryptoImpl mode = CryptoImpl::Auto;
    CryptoBatch batch_mode = CryptoBatch::Auto;
    bool hw_aes = false;
    bool hw_clmul = false;
    bool batch_aes = false;
    bool batch_clmul = false;
};

/** The process-wide routing, resolved from the env on first use. */
const DispatchState &dispatchState();

/**
 * AES-NI encryption of one block.  round_key_bytes must hold the
 * 16 * (rounds + 1) byte-serialized round keys (Aes::roundKeyBytes()).
 * Calling this on a CPU without AES-NI is undefined; route through
 * dispatchState().
 */
Block128 aesEncryptHw(const std::uint8_t *round_key_bytes, int rounds,
                      const Block128 &plaintext);

/** PCLMULQDQ 128x128 -> 256 carry-less multiply; same contract. */
U256 clmul128Hw(const Block128 &a, const Block128 &b);

/**
 * Pipelined AES-NI encryption of n independent blocks under one key
 * schedule: up to 8 block streams advance round-by-round so the
 * multi-cycle AESENC units stay full instead of serializing on each
 * block's round chain.  in == out aliasing is allowed (each block is
 * loaded before any block of its group is stored); other overlaps are
 * not.  Same routing contract as aesEncryptHw.
 */
void aesEncryptHwBatch(const std::uint8_t *round_key_bytes, int rounds,
                       const Block128 *in, Block128 *out, std::size_t n);

/**
 * Pipelined PCLMULQDQ multiply of n independent (a, b) pairs; partial
 * products of adjacent pairs interleave to cover the instruction's
 * latency.  Results are limb-identical to clmul128Hw per pair.
 */
void clmul128HwBatch(const Block128 *a, const Block128 *b, U256 *out,
                     std::size_t n);

} // namespace detail

} // namespace rmcc::crypto

#endif // RMCC_CRYPTO_DISPATCH_HPP
