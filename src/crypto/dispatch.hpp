/**
 * @file
 * Runtime dispatch between the portable software crypto kernels and the
 * hardware AES-NI / PCLMULQDQ instruction paths.
 *
 * The software implementations in aes.cpp / clmul.cpp remain the oracle of
 * correctness: the hardware kernels compute the exact same functions
 * (FIPS-197 AES, 128x128 carry-less multiply) and are verified against
 * them bit-for-bit by the test suite.  Routing is decided once per process
 * from RMCC_CRYPTO_IMPL:
 *
 *   auto (default)  use hardware kernels iff the CPU supports them
 *   hw              require hardware kernels; throw if the CPU cannot
 *   sw              force the portable software kernels
 *
 * Invalid values throw via util::envChoice's strict parsing.
 */
#ifndef RMCC_CRYPTO_DISPATCH_HPP
#define RMCC_CRYPTO_DISPATCH_HPP

#include <atomic>
#include <cstdint>

#include "crypto/clmul.hpp"

namespace rmcc::crypto
{

/** The three RMCC_CRYPTO_IMPL policies. */
enum class CryptoImpl
{
    Auto, //!< Hardware when supported, software otherwise (default).
    Hw,   //!< Hardware required; resolution throws without CPU support.
    Sw,   //!< Software forced.
};

/** CPUID-derived instruction-set support. */
struct CpuFeatures
{
    bool aesni = false;  //!< AESENC/AESENCLAST available.
    bool pclmul = false; //!< PCLMULQDQ available.
};

/** Probe the running CPU (all-false on non-x86 builds). */
CpuFeatures detectCpuFeatures();

/** The policy parsed from RMCC_CRYPTO_IMPL ("auto" when unset). */
CryptoImpl configuredCryptoImpl();

/** True when AES encryption is currently routed to AES-NI. */
bool hwAesActive();

/** True when clmul128 is currently routed to PCLMULQDQ. */
bool hwClmulActive();

/**
 * Re-read RMCC_CRYPTO_IMPL and recompute the routing.  Test hook: lets a
 * test force =sw and =hw in one process and compare the kernels.  Throws
 * (leaving the previous routing in place) on an invalid value or on =hw
 * without CPU support.  Not thread-safe; call only while no other thread
 * is inside a crypto kernel.
 */
void reresolveCryptoDispatch();

/**
 * Process-global crypto operation counts, split by routing.  Maintained
 * only while setCryptoOpCounting(true) is active (observability turns it
 * on); otherwise the kernels pay a single relaxed bool load.  Counts are
 * cumulative across the process — consumers (the obs epoch sampler) take
 * deltas, and a parallel suite mixes cells' operations together.
 */
struct CryptoOpCounts
{
    std::uint64_t aes_hw = 0;   //!< AES block encryptions via AES-NI.
    std::uint64_t aes_sw = 0;   //!< AES block encryptions in software.
    std::uint64_t clmul_hw = 0; //!< 128-bit clmuls via PCLMULQDQ.
    std::uint64_t clmul_sw = 0; //!< 128-bit clmuls in software.
};

/** Snapshot the global counters (all zero until counting is enabled). */
CryptoOpCounts cryptoOpCounts();

/** Enable/disable op counting; counters keep their values when off. */
void setCryptoOpCounting(bool on);

/** True when kernels currently increment the op counters. */
bool cryptoOpCountingEnabled();

namespace detail
{

//! Counting gate + counters; relaxed atomics, hot-path cost when
//! disabled is one non-contended load.
extern std::atomic<bool> g_count_ops;
extern std::atomic<std::uint64_t> g_aes_hw;
extern std::atomic<std::uint64_t> g_aes_sw;
extern std::atomic<std::uint64_t> g_clmul_hw;
extern std::atomic<std::uint64_t> g_clmul_sw;

inline void
countAes(bool hw)
{
    if (g_count_ops.load(std::memory_order_relaxed))
        (hw ? g_aes_hw : g_aes_sw).fetch_add(1, std::memory_order_relaxed);
}

inline void
countClmul(bool hw)
{
    if (g_count_ops.load(std::memory_order_relaxed))
        (hw ? g_clmul_hw : g_clmul_sw)
            .fetch_add(1, std::memory_order_relaxed);
}

/** Resolved routing; read per call by the dispatching entry points. */
struct DispatchState
{
    CryptoImpl mode = CryptoImpl::Auto;
    bool hw_aes = false;
    bool hw_clmul = false;
};

/** The process-wide routing, resolved from the env on first use. */
const DispatchState &dispatchState();

/**
 * AES-NI encryption of one block.  round_key_bytes must hold the
 * 16 * (rounds + 1) byte-serialized round keys (Aes::roundKeyBytes()).
 * Calling this on a CPU without AES-NI is undefined; route through
 * dispatchState().
 */
Block128 aesEncryptHw(const std::uint8_t *round_key_bytes, int rounds,
                      const Block128 &plaintext);

/** PCLMULQDQ 128x128 -> 256 carry-less multiply; same contract. */
U256 clmul128Hw(const Block128 &a, const Block128 &b);

} // namespace detail

} // namespace rmcc::crypto

#endif // RMCC_CRYPTO_DISPATCH_HPP
