/**
 * @file
 * Runtime dispatch between the portable software crypto kernels and the
 * hardware AES-NI / PCLMULQDQ instruction paths.
 *
 * The software implementations in aes.cpp / clmul.cpp remain the oracle of
 * correctness: the hardware kernels compute the exact same functions
 * (FIPS-197 AES, 128x128 carry-less multiply) and are verified against
 * them bit-for-bit by the test suite.  Routing is decided once per process
 * from RMCC_CRYPTO_IMPL:
 *
 *   auto (default)  use hardware kernels iff the CPU supports them
 *   hw              require hardware kernels; throw if the CPU cannot
 *   sw              force the portable software kernels
 *
 * Invalid values throw via util::envChoice's strict parsing.
 */
#ifndef RMCC_CRYPTO_DISPATCH_HPP
#define RMCC_CRYPTO_DISPATCH_HPP

#include <cstdint>

#include "crypto/clmul.hpp"

namespace rmcc::crypto
{

/** The three RMCC_CRYPTO_IMPL policies. */
enum class CryptoImpl
{
    Auto, //!< Hardware when supported, software otherwise (default).
    Hw,   //!< Hardware required; resolution throws without CPU support.
    Sw,   //!< Software forced.
};

/** CPUID-derived instruction-set support. */
struct CpuFeatures
{
    bool aesni = false;  //!< AESENC/AESENCLAST available.
    bool pclmul = false; //!< PCLMULQDQ available.
};

/** Probe the running CPU (all-false on non-x86 builds). */
CpuFeatures detectCpuFeatures();

/** The policy parsed from RMCC_CRYPTO_IMPL ("auto" when unset). */
CryptoImpl configuredCryptoImpl();

/** True when AES encryption is currently routed to AES-NI. */
bool hwAesActive();

/** True when clmul128 is currently routed to PCLMULQDQ. */
bool hwClmulActive();

/**
 * Re-read RMCC_CRYPTO_IMPL and recompute the routing.  Test hook: lets a
 * test force =sw and =hw in one process and compare the kernels.  Throws
 * (leaving the previous routing in place) on an invalid value or on =hw
 * without CPU support.  Not thread-safe; call only while no other thread
 * is inside a crypto kernel.
 */
void reresolveCryptoDispatch();

namespace detail
{

/** Resolved routing; read per call by the dispatching entry points. */
struct DispatchState
{
    CryptoImpl mode = CryptoImpl::Auto;
    bool hw_aes = false;
    bool hw_clmul = false;
};

/** The process-wide routing, resolved from the env on first use. */
const DispatchState &dispatchState();

/**
 * AES-NI encryption of one block.  round_key_bytes must hold the
 * 16 * (rounds + 1) byte-serialized round keys (Aes::roundKeyBytes()).
 * Calling this on a CPU without AES-NI is undefined; route through
 * dispatchState().
 */
Block128 aesEncryptHw(const std::uint8_t *round_key_bytes, int rounds,
                      const Block128 &plaintext);

/** PCLMULQDQ 128x128 -> 256 carry-less multiply; same contract. */
U256 clmul128Hw(const Block128 &a, const Block128 &b);

} // namespace detail

} // namespace rmcc::crypto

#endif // RMCC_CRYPTO_DISPATCH_HPP
