#include "crypto/mac.hpp"

namespace rmcc::crypto
{

MacEngine::MacEngine(std::uint64_t key_seed)
{
    // Derive word keys by encrypting distinct constants under a key-seeded
    // schedule; any PRF would do, this keeps derivation self-contained.
    const Aes kdf = Aes::fromSeed(key_seed ^ 0xc2b2ae3d27d4eb4fULL);
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        keys_[w] = kdf.encrypt(makeBlock(0x6d61636b6579ULL, w));
}

MacEngine::MacEngine(const std::array<Block128, kWordsPerBlock> &keys)
    : keys_(keys)
{
}

Block128
MacEngine::dotProduct(const DataBlock &block) const
{
    // All four word x key multiplies in one batched clmul dispatch; each
    // partial product reduces exactly as gf128Mul would, so the result is
    // bit-identical to the per-word loop.
    std::array<U256, kWordsPerBlock> prods;
    clmul128Batch(block.data(), keys_.data(), prods.data(),
                  kWordsPerBlock);
    Block128 acc{};
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        acc = acc ^ gf128Reduce(prods[w]);
    return acc;
}

std::uint64_t
MacEngine::mac(const DataBlock &block, const Block128 &otp) const
{
    const Block128 mixed = dotProduct(block) ^ otp;
    const auto [hi, lo] = splitBlock(mixed);
    // Truncate: keep the low 56 bits of the XOR of both halves so every
    // product bit influences the MAC.
    return (hi ^ lo) & kMacMask;
}

} // namespace rmcc::crypto
